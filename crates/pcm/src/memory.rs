//! The sparse MLC/SLC PCM array simulator.
//!
//! [`PcmMemory`] models a byte-addressable PCM module at row (cache line)
//! granularity. Rows are materialized lazily with pseudo-random initial
//! contents (the paper initializes every address from a cryptographically
//! strong generator), per-cell endurance limits are sampled on first touch,
//! and every write goes through the read-modify-write encode path:
//!
//! 1. read the current row contents and stuck-cell state,
//! 2. let the configured [`Encoder`] pick the cheapest codeword,
//! 3. program only the cells that change, skipping stuck cells,
//! 4. charge Table-I energy per programmed cell, accrue wear, and retire
//!    cells that exceed their endurance limit (they become stuck at their
//!    final value).
//!
//! Step 3–4 run word-parallel ([`Row::commit_word`]): transition classes
//! for all cells of a word are derived at once from packed XOR/popcount
//! operations and charged by per-class counts, with per-cell work only for
//! the cells actually programmed. The original per-cell loop is retained as
//! a reference oracle behind `cfg(any(test, feature = "scalar-oracle"))`
//! (see `PcmMemory::write_line_scalar`); the `commit_oracle` differential
//! suite pins the two paths to bit-identical behaviour.

use std::collections::HashMap;

use coset::cost::{CostFunction, TransitionEnergy};
use coset::symbol::CellKind;
use coset::{EncodeScratch, Encoded, Encoder, WriteContext};
use memcrypt::{initial_row_contents, SplitMix64};

use crate::config::PcmConfig;
use crate::endurance::EnduranceModel;
use crate::energy::TransitionCosts;
use crate::fault::FaultMap;
use crate::row::Row;
use crate::stats::{LineWriteOutcome, MemoryStats, WordWriteOutcome};

/// Reusable buffers for the encoded line/word write path.
///
/// Owns the encoder's [`EncodeScratch`] plus the per-line context and result
/// vectors, so repeated [`PcmMemory::write_line_with`] calls reuse one set
/// of allocations instead of re-allocating per candidate and per word.
#[derive(Debug, Default)]
pub struct LineWriteScratch {
    encode: EncodeScratch,
    ctxs: Vec<WriteContext>,
    encoded: Vec<Encoded>,
}

impl LineWriteScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        LineWriteScratch::default()
    }
}

/// A simulated PCM module.
pub struct PcmMemory {
    config: PcmConfig,
    endurance: EnduranceModel,
    energies: TransitionEnergy,
    /// Per-class commit costs derived once from `energies` (the SWAR commit
    /// path charges class counts instead of per-cell table lookups).
    costs: TransitionCosts,
    fault_map: Option<FaultMap>,
    rows: HashMap<u64, Row>,
    stats: MemoryStats,
}

impl std::fmt::Debug for PcmMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmMemory")
            .field("config", &self.config)
            .field("rows_touched", &self.rows.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PcmMemory {
    /// Creates a memory with the given configuration and no pre-existing
    /// faults (cells only fail through wear).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(config: PcmConfig) -> Self {
        config.validate();
        let endurance = EnduranceModel::paper_default(config.endurance_mean, config.seed);
        let energies = match config.cell_kind {
            CellKind::Mlc => TransitionEnergy::mlc_table_i(),
            CellKind::Slc => TransitionEnergy::slc_symmetric(),
        };
        let costs = TransitionCosts::new(config.cell_kind, config.energy_weighted_wear);
        assert!(
            costs.matches(&energies),
            "transition table must have the per-class structure the SWAR commit assumes"
        );
        PcmMemory {
            config,
            endurance,
            energies,
            costs,
            fault_map: None,
            rows: HashMap::new(),
            stats: MemoryStats::default(),
        }
    }

    /// Attaches a pre-generated fault map (the paper's fixed-incidence
    /// "snapshot" experiments). Rows materialized afterwards start with the
    /// mapped cells already stuck.
    pub fn with_fault_map(mut self, map: FaultMap) -> Self {
        assert_eq!(
            map.cell_kind(),
            self.config.cell_kind,
            "fault map cell kind must match the memory"
        );
        self.fault_map = Some(map);
        self
    }

    /// Replaces the default endurance model.
    pub fn with_endurance(mut self, endurance: EnduranceModel) -> Self {
        self.endurance = endurance;
        self
    }

    /// The memory configuration.
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// The per-transition energy table this memory charges (Table I for
    /// MLC, the symmetric model for SLC). The hot commit path charges the
    /// equivalent per-class [`TransitionCosts`] instead of consulting the
    /// table per cell; the constructor asserts the two agree.
    pub fn energies(&self) -> &TransitionEnergy {
        &self.energies
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Number of rows that have been touched (materialized).
    pub fn rows_touched(&self) -> usize {
        self.rows.len()
    }

    /// Total stuck cells across all materialized rows.
    pub fn total_stuck_cells(&self) -> usize {
        // DET-OK: order-independent integer sum over rows; no float error,
        // no ordering observable in the result.
        self.rows.values().map(Row::stuck_cells).sum()
    }

    /// Direct read-only access to a materialized row, if it exists.
    pub fn row(&self, row_addr: u64) -> Option<&Row> {
        self.rows.get(&row_addr)
    }

    /// Injects a burst of freshly stuck cells into `row_addr`: each not-yet-
    /// stuck cell (data and auxiliary) freezes at its currently stored
    /// symbol with probability `cell_ppm` per million, sampled purely from
    /// `seed` and the cell index — the mid-run stuck-at-incidence ramp used
    /// by fault injection. Returns the number of cells newly stuck.
    pub fn inject_stuck_burst(&mut self, row_addr: u64, cell_ppm: u64, seed: u64) -> u64 {
        let row = self.materialize(row_addr);
        let total = row.cells_per_word_total() * row.words();
        let mut newly_stuck = 0u64;
        for cell in 0..total {
            if row.is_stuck(cell) {
                continue;
            }
            let h = SplitMix64::mix(seed ^ SplitMix64::mix(cell as u64 + 1));
            if h % 1_000_000 < cell_ppm {
                // Freeze at the stored symbol, matching the natural wear-out
                // model — the stored value stays valid until a later write
                // tries to move the cell.
                row.stick_cell(cell, row.current_symbol(cell));
                newly_stuck += 1;
            }
        }
        newly_stuck
    }

    /// Kills `row_addr` outright: every cell freezes at its currently
    /// stored symbol, so no future write can change any bit of the row.
    pub fn kill_row(&mut self, row_addr: u64) {
        self.materialize(row_addr).kill();
    }

    fn materialize(&mut self, row_addr: u64) -> &mut Row {
        let config = &self.config;
        let endurance = &self.endurance;
        let fault_map = &self.fault_map;
        self.rows.entry(row_addr).or_insert_with(|| {
            let words = config.words_per_row();
            let mut init = Vec::with_capacity(words);
            let raw = initial_row_contents(config.seed, row_addr);
            for w in 0..words {
                init.push(raw[w % raw.len()]);
            }
            let mut row = Row::new(config, endurance, row_addr, &init);
            // Apply the pre-generated fault map: mapped cells are stuck and
            // the stored value reflects the frozen symbol.
            if let Some(map) = fault_map {
                let total = row.cells_per_word_total() * words;
                for cell in 0..total {
                    if let Some(sym) = map.stuck_symbol(row_addr, cell) {
                        row.stick_cell(cell, sym as u8);
                    }
                }
                row.freeze_stuck_values();
            }
            row
        })
    }

    /// Builds the encoder-facing [`WriteContext`] for word `w` of a row.
    pub fn write_context(&mut self, row_addr: u64, w: usize, aux_bits: u32) -> WriteContext {
        let word_bits = self.config.word_bits;
        let row = self.materialize(row_addr);
        Self::context_for(row, w, word_bits, aux_bits)
    }

    /// Builds the context for word `w` from an already-materialized row.
    fn context_for(row: &Row, w: usize, word_bits: usize, aux_bits: u32) -> WriteContext {
        let old_data = row.data_block(w, word_bits);
        let old_aux = row.aux_word(w);
        let stuck = row.stuck_bits_for_data(w, word_bits);
        let (aux_mask, aux_value) = row.stuck_bits_for_aux(w);
        WriteContext::new(old_data, old_aux, aux_bits)
            .with_stuck(stuck)
            .with_stuck_aux(aux_mask, aux_value)
    }

    /// Writes one already-encrypted word through an encoder. Returns the
    /// per-word outcome (energy, programming events, SAW cells, new dead
    /// cells).
    ///
    /// # Panics
    ///
    /// Panics if the encoder's block width does not match the configured
    /// word width, or its auxiliary budget exceeds the per-word budget.
    pub fn write_word(
        &mut self,
        row_addr: u64,
        w: usize,
        data: u64,
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> WordWriteOutcome {
        self.write_word_with(
            row_addr,
            w,
            data,
            encoder,
            cost,
            &mut LineWriteScratch::new(),
        )
    }

    /// Session variant of [`PcmMemory::write_word`]: reuses the scratch's
    /// buffers so steady-state word writes stay off the allocator's hot
    /// path.
    pub fn write_word_with(
        &mut self,
        row_addr: u64,
        w: usize,
        data: u64,
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) -> WordWriteOutcome {
        self.check_encoder(encoder);
        assert!(w < self.config.words_per_row(), "word index out of range");

        let ctx = self.write_context(row_addr, w, encoder.aux_bits());
        encoder.encode_line(
            &[data],
            std::slice::from_ref(&ctx),
            cost,
            &mut scratch.encode,
            &mut scratch.encoded,
        );
        let encoded = &scratch.encoded[0];
        let outcome = self.commit_word(
            row_addr,
            w,
            encoded.codeword.as_u64(),
            encoded.aux,
            encoder.aux_bits(),
        );
        self.stats.absorb(&outcome);
        outcome
    }

    fn check_encoder(&self, encoder: &dyn Encoder) {
        assert_eq!(
            encoder.block_bits(),
            self.config.word_bits,
            "encoder block width must match the memory word width"
        );
        assert!(
            encoder.aux_bits() <= self.config.aux_bits_per_word,
            "encoder needs {} aux bits but the memory only provides {}",
            encoder.aux_bits(),
            self.config.aux_bits_per_word
        );
    }

    /// The auxiliary region width in bits: `aux_bits` rounded up to whole
    /// cells.
    fn aux_region_bits(&self, aux_bits: u32) -> usize {
        let bpc = self.config.cell_kind.bits_per_cell();
        (aux_bits as usize).div_ceil(bpc) * bpc
    }

    /// Programs the chosen codeword into the array through the word-parallel
    /// commit, applying stuck cells, charging energy and accruing wear.
    fn commit_word(
        &mut self,
        row_addr: u64,
        w: usize,
        desired_data: u64,
        desired_aux: u64,
        aux_bits: u32,
    ) -> WordWriteOutcome {
        let costs = self.costs;
        let aux_region_bits = self.aux_region_bits(aux_bits);
        let row = self.materialize(row_addr);
        let mut outcome = WordWriteOutcome::default();
        row.commit_word(
            w,
            desired_data,
            desired_aux,
            aux_region_bits,
            &costs,
            &mut outcome,
        );
        outcome
    }

    /// Commits a whole line of already-encoded words in one pass: the row is
    /// materialized (one hash lookup) once and every word goes through the
    /// word-parallel [`Row::commit_word`]. This is the batched back end of
    /// [`PcmMemory::write_line_with`], and therefore of
    /// `controller::WritePipeline::write_line` and the sharded engine's
    /// trace replay.
    ///
    /// Counts as one row write in [`MemoryStats`] (plus one word write per
    /// encoded word, like every commit).
    ///
    /// # Panics
    ///
    /// Panics if `encoded` holds more words than the row, or `aux_bits`
    /// exceeds the per-word auxiliary budget (the aux region would spill
    /// into the next word's cells).
    pub fn commit_line(
        &mut self,
        row_addr: u64,
        encoded: &[Encoded],
        aux_bits: u32,
    ) -> LineWriteOutcome {
        assert!(
            encoded.len() <= self.config.words_per_row(),
            "encoded line exceeds the row"
        );
        assert!(
            aux_bits <= self.config.aux_bits_per_word,
            "commit needs {} aux bits but the memory only provides {}",
            aux_bits,
            self.config.aux_bits_per_word
        );
        self.stats.row_writes += 1;
        let costs = self.costs;
        let aux_region_bits = self.aux_region_bits(aux_bits);
        let row = self.materialize(row_addr);
        let mut words = Vec::with_capacity(encoded.len());
        for (w, enc) in encoded.iter().enumerate() {
            let mut outcome = WordWriteOutcome::default();
            row.commit_word(
                w,
                enc.codeword.as_u64(),
                enc.aux,
                aux_region_bits,
                &costs,
                &mut outcome,
            );
            words.push(outcome);
        }
        for outcome in &words {
            self.stats.absorb(outcome);
        }
        LineWriteOutcome { words }
    }

    /// Writes a full already-encrypted row (cache line) through an encoder.
    pub fn write_line(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> LineWriteOutcome {
        self.write_line_with(row_addr, line, encoder, cost, &mut LineWriteScratch::new())
    }

    /// Session variant of [`PcmMemory::write_line`]: batches the whole line
    /// through [`Encoder::encode_line`] with reusable scratch buffers and
    /// commits it with [`PcmMemory::commit_line`] — the entry point the
    /// write pipeline drives.
    ///
    /// Word regions of a row are disjoint (data cells, auxiliary cells and
    /// wear state never overlap between words), so building every word's
    /// context up front and committing afterwards is exactly equivalent to
    /// the word-by-word read-modify-write loop.
    pub fn write_line_with(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) -> LineWriteOutcome {
        self.encode_line_stage(row_addr, line, encoder, cost, scratch);
        self.commit_line(row_addr, &scratch.encoded, encoder.aux_bits())
    }

    /// The shared encode stage of a line write: validates the line and
    /// encoder, builds every word's [`WriteContext`] from one row
    /// materialization, and leaves the chosen codewords in
    /// `scratch.encoded`. Both commit back ends (word-parallel and scalar
    /// oracle) run behind this.
    fn encode_line_stage(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) {
        assert_eq!(
            line.len(),
            self.config.words_per_row(),
            "line must contain exactly one row of words"
        );
        self.check_encoder(encoder);

        let word_bits = self.config.word_bits;
        let aux_bits = encoder.aux_bits();
        let row = self.materialize(row_addr);
        scratch.ctxs.clear();
        scratch
            .ctxs
            .extend((0..line.len()).map(|w| Self::context_for(row, w, word_bits, aux_bits)));
        encoder.encode_line(
            line,
            &scratch.ctxs,
            cost,
            &mut scratch.encode,
            &mut scratch.encoded,
        );
    }

    /// Reads and decodes a full row with the encoder that wrote it.
    /// Stuck-at-wrong cells naturally corrupt the returned data.
    pub fn read_line(&mut self, row_addr: u64, encoder: &dyn Encoder) -> Vec<u64> {
        let mut out = Vec::new();
        self.read_line_into(row_addr, encoder, &mut out);
        out
    }

    /// Session variant of [`PcmMemory::read_line`]: decodes the row into the
    /// caller's buffer so steady-state reads reuse one allocation (the read
    /// mirror of [`PcmMemory::write_line_with`]).
    pub fn read_line_into(&mut self, row_addr: u64, encoder: &dyn Encoder, out: &mut Vec<u64>) {
        let word_bits = self.config.word_bits;
        let words = self.config.words_per_row();
        let row = self.materialize(row_addr);
        out.clear();
        out.extend((0..words).map(|w| {
            let stored = row.data_block(w, word_bits);
            encoder.decode(&stored, row.aux_word(w)).as_u64()
        }));
    }

    /// Reads the raw (still encoded) contents of a row.
    pub fn read_raw_line(&mut self, row_addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.read_raw_line_into(row_addr, &mut out);
        out
    }

    /// Session variant of [`PcmMemory::read_raw_line`], reusing the caller's
    /// buffer.
    pub fn read_raw_line_into(&mut self, row_addr: u64, out: &mut Vec<u64>) {
        let words = self.config.words_per_row();
        let row = self.materialize(row_addr);
        out.clear();
        out.extend((0..words).map(|w| row.data_word(w)));
    }
}

/// The per-cell scalar commit path, retained as the reference oracle for
/// the word-parallel implementation. Compiled only for this crate's own
/// tests and under the `scalar-oracle` feature (the differential
/// `commit_oracle` suite and the `commit_path` bench enable it).
#[cfg(any(test, feature = "scalar-oracle"))]
impl PcmMemory {
    /// Scalar-oracle variant of [`PcmMemory::write_line`]: identical encode
    /// stage, but every word is committed by the per-cell reference loop.
    // ORACLE: crates/pcm/tests/commit_oracle.rs
    pub fn write_line_scalar(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> LineWriteOutcome {
        self.write_line_scalar_with(row_addr, line, encoder, cost, &mut LineWriteScratch::new())
    }

    /// Session variant of [`PcmMemory::write_line_scalar`], sharing the
    /// exact encode stage (and scratch reuse) of
    /// [`PcmMemory::write_line_with`] so benchmarks comparing the two
    /// commit back ends measure only the commit difference.
    pub fn write_line_scalar_with(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) -> LineWriteOutcome {
        self.encode_line_stage(row_addr, line, encoder, cost, scratch);
        self.stats.row_writes += 1;
        let aux_bits = encoder.aux_bits();
        let words = scratch
            .encoded
            .iter()
            .enumerate()
            .map(|(w, encoded)| {
                let outcome = self.commit_word_scalar(
                    row_addr,
                    w,
                    encoded.codeword.as_u64(),
                    encoded.aux,
                    aux_bits,
                );
                self.stats.absorb(&outcome);
                outcome
            })
            .collect();
        LineWriteOutcome { words }
    }

    /// Scalar-oracle variant of [`PcmMemory::write_word`].
    // ORACLE: crates/pcm/tests/commit_oracle.rs
    pub fn write_word_scalar(
        &mut self,
        row_addr: u64,
        w: usize,
        data: u64,
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> WordWriteOutcome {
        self.check_encoder(encoder);
        assert!(w < self.config.words_per_row(), "word index out of range");
        let ctx = self.write_context(row_addr, w, encoder.aux_bits());
        let mut scratch = LineWriteScratch::new();
        encoder.encode_line(
            &[data],
            std::slice::from_ref(&ctx),
            cost,
            &mut scratch.encode,
            &mut scratch.encoded,
        );
        let encoded = &scratch.encoded[0];
        let outcome = self.commit_word_scalar(
            row_addr,
            w,
            encoded.codeword.as_u64(),
            encoded.aux,
            encoder.aux_bits(),
        );
        self.stats.absorb(&outcome);
        outcome
    }

    /// The original cell-by-cell commit: walks every cell of the word,
    /// looks its transition up in the [`TransitionEnergy`] table (borrowed
    /// once, not cloned) and accrues wear through [`Row::add_wear`].
    fn commit_word_scalar(
        &mut self,
        row_addr: u64,
        w: usize,
        desired_data: u64,
        desired_aux: u64,
        aux_bits: u32,
    ) -> WordWriteOutcome {
        let bpc = self.config.cell_kind.bits_per_cell();
        let cell_mask = (1u64 << bpc) - 1;
        let is_mlc = self.config.cell_kind == CellKind::Mlc;
        let energy_weighted = self.config.energy_weighted_wear;
        let data_cells = self.config.cells_per_word();
        let aux_cells_used = (aux_bits as usize).div_ceil(bpc);

        self.materialize(row_addr);
        // Disjoint field borrows: the row mutably, the energy table shared.
        let row = self.rows.get_mut(&row_addr).expect("just materialized");
        let energies = &self.energies;
        let mut outcome = WordWriteOutcome::default();

        let old_data = row.data_word(w);
        let old_aux = row.aux_word(w);
        let mut stored_data = old_data;
        let mut stored_aux = old_aux;

        // Program one region (data or aux) of the word.
        let program_region = |row: &mut Row,
                              base_cell: usize,
                              cells: usize,
                              old: u64,
                              desired: u64,
                              stored: &mut u64,
                              outcome: &mut WordWriteOutcome| {
            for c in 0..cells {
                let shift = c * bpc;
                let old_sym = ((old >> shift) & cell_mask) as u8;
                let new_sym = ((desired >> shift) & cell_mask) as u8;
                let cell = base_cell + c;
                if row.is_stuck(cell) {
                    let frozen = row.stuck_symbol(cell);
                    if frozen != new_sym {
                        outcome.saw_cells += 1;
                    }
                    // The array keeps the frozen value regardless.
                    *stored = (*stored & !(cell_mask << shift)) | ((frozen as u64) << shift);
                    continue;
                }
                if old_sym != new_sym {
                    let e = energies.energy(old_sym, new_sym);
                    outcome.energy_pj += e;
                    outcome.cells_programmed += 1;
                    if is_mlc && (new_sym & 1) == 1 {
                        outcome.high_energy_programs += 1;
                    }
                    outcome.bit_flips += (old_sym ^ new_sym).count_ones();
                    let wear_units = if energy_weighted {
                        ((e / crate::energy::LOW_TRANSITION_PJ).round() as u64).max(1)
                    } else {
                        1
                    };
                    if row.add_wear(cell, wear_units) {
                        outcome.new_dead_cells += 1;
                        // The final programming succeeds; the cell is then
                        // frozen at the value just written.
                        row.stick_cell(cell, new_sym);
                    }
                }
                *stored = (*stored & !(cell_mask << shift)) | ((new_sym as u64) << shift);
            }
        };

        let data_base = row.first_cell_of_word(w);
        program_region(
            row,
            data_base,
            data_cells,
            old_data,
            desired_data,
            &mut stored_data,
            &mut outcome,
        );
        let aux_base = row.first_aux_cell_of_word(w);
        program_region(
            row,
            aux_base,
            aux_cells_used,
            old_aux,
            desired_aux,
            &mut stored_aux,
            &mut outcome,
        );

        row.store_word(w, stored_data, stored_aux);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coset::cost::{opt_saw_then_energy, SawCount, WriteEnergy};
    use coset::{Fnw, Rcc, Unencoded, Vcc};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_config() -> PcmConfig {
        PcmConfig::scaled(1024 * 1024, 1e3)
    }

    #[test]
    fn unencoded_write_read_roundtrip() {
        let mut mem = PcmMemory::new(tiny_config());
        let enc = Unencoded::new(64);
        let cf = WriteEnergy::mlc();
        let line: Vec<u64> = (0..8).map(|i| 0x1111_1111_1111_1111u64 * i).collect();
        mem.write_line(7, &line, &enc, &cf);
        assert_eq!(mem.read_line(7, &enc), line);
        assert_eq!(mem.stats().row_writes, 1);
        assert_eq!(mem.stats().word_writes, 8);
        assert!(mem.stats().energy_pj > 0.0);
        assert_eq!(mem.rows_touched(), 1);
    }

    #[test]
    fn vcc_write_read_roundtrip_without_faults() {
        let mut mem = PcmMemory::new(tiny_config());
        let vcc = Vcc::paper_mlc(256);
        let cf = WriteEnergy::mlc();
        let mut rng = StdRng::seed_from_u64(60);
        for addr in 0..20u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            mem.write_line(addr, &line, &vcc, &cf);
            assert_eq!(mem.read_line(addr, &vcc), line, "row {addr}");
        }
    }

    #[test]
    fn vcc_uses_less_energy_than_unencoded() {
        let cfg = tiny_config();
        let mut rng = StdRng::seed_from_u64(61);
        let lines: Vec<Vec<u64>> = (0..100)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let cf = WriteEnergy::mlc();

        let mut unenc_mem = PcmMemory::new(cfg.clone());
        let unenc = Unencoded::new(64);
        for (i, line) in lines.iter().enumerate() {
            unenc_mem.write_line(i as u64 % 16, line, &unenc, &cf);
        }

        let mut vcc_mem = PcmMemory::new(cfg);
        let vcc = Vcc::paper_mlc(256);
        for (i, line) in lines.iter().enumerate() {
            vcc_mem.write_line(i as u64 % 16, line, &vcc, &cf);
        }

        let e_unenc = unenc_mem.stats().energy_pj;
        let e_vcc = vcc_mem.stats().energy_pj;
        assert!(
            e_vcc < 0.85 * e_unenc,
            "VCC energy {e_vcc:.0} pJ should be well below unencoded {e_unenc:.0} pJ"
        );
    }

    #[test]
    fn fault_map_produces_saw_for_unencoded_and_fewer_for_rcc() {
        let cfg = tiny_config();
        let map = FaultMap::uniform(1e-2, CellKind::Mlc, 77);
        let mut rng = StdRng::seed_from_u64(62);
        let lines: Vec<Vec<u64>> = (0..200)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let cf = opt_saw_then_energy();

        let mut unenc_mem = PcmMemory::new(cfg.clone()).with_fault_map(map);
        let unenc = Unencoded::new(64);
        for (i, line) in lines.iter().enumerate() {
            unenc_mem.write_line(i as u64 % 64, line, &unenc, &cf);
        }

        let mut rcc_mem = PcmMemory::new(cfg).with_fault_map(map);
        let rcc = Rcc::random(64, 256, &mut rng);
        for (i, line) in lines.iter().enumerate() {
            rcc_mem.write_line(i as u64 % 64, line, &rcc, &cf);
        }

        let saw_unenc = unenc_mem.stats().saw_cells;
        let saw_rcc = rcc_mem.stats().saw_cells;
        assert!(saw_unenc > 0, "faulty memory must show SAW for unencoded");
        assert!(
            (saw_rcc as f64) < 0.2 * saw_unenc as f64,
            "RCC-256 should mask most SAW cells ({saw_rcc} vs {saw_unenc})"
        );
    }

    #[test]
    fn wear_eventually_kills_cells_and_fnw_programs_fewer_expensive_levels() {
        // With a tiny endurance, repeated writes to one row kill cells.
        // FNW optimizing MLC write energy must issue fewer high-energy
        // programming events than unencoded writeback of the same stream
        // (its own auxiliary cells wear too, so total dead cells can be
        // slightly higher — the energy-relevant metric is what matters).
        let cfg = PcmConfig::scaled(64 * 1024, 200.0);
        let cf = WriteEnergy::mlc();

        let run = |encoder: &dyn Encoder| {
            let mut mem = PcmMemory::new(cfg.clone());
            let mut local_rng = StdRng::seed_from_u64(64);
            for _ in 0..600 {
                let line: Vec<u64> = (0..8).map(|_| local_rng.gen()).collect();
                mem.write_line(3, &line, encoder, &cf);
            }
            (mem.stats().dead_cells, mem.stats().high_energy_programs)
        };

        let (unenc_dead, unenc_high) = run(&Unencoded::new(64));
        let (_fnw_dead, fnw_high) = run(&Fnw::with_sub_block(64, 16));
        assert!(unenc_dead > 0, "unencoded stream should wear out cells");
        assert!(
            fnw_high < unenc_high,
            "FNW should program fewer high-energy levels ({fnw_high} vs {unenc_high})"
        );
    }

    #[test]
    fn saw_objective_reduces_saw_compared_to_energy_objective() {
        let cfg = tiny_config();
        let map = FaultMap::uniform(2e-2, CellKind::Mlc, 5);
        let mut rng = StdRng::seed_from_u64(65);
        let lines: Vec<Vec<u64>> = (0..150)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let vcc = Vcc::paper_stored(256, &mut rng);

        let mut saw_first = PcmMemory::new(cfg.clone()).with_fault_map(map);
        for (i, line) in lines.iter().enumerate() {
            saw_first.write_line(i as u64 % 32, line, &vcc, &opt_saw_then_energy());
        }
        let mut energy_only = PcmMemory::new(cfg).with_fault_map(map);
        for (i, line) in lines.iter().enumerate() {
            energy_only.write_line(i as u64 % 32, line, &vcc, &WriteEnergy::mlc());
        }
        assert!(
            saw_first.stats().saw_cells <= energy_only.stats().saw_cells,
            "SAW-first objective should not leave more SAW cells"
        );
    }

    #[test]
    fn saw_count_objective_alone_matches_stats() {
        // Write with the pure SAW objective and confirm the recorded SAW
        // cells equal what a manual re-check of stuck cells reports.
        let cfg = tiny_config();
        let map = FaultMap::uniform(5e-2, CellKind::Mlc, 123);
        let mut mem = PcmMemory::new(cfg).with_fault_map(map);
        let enc = Unencoded::new(64);
        let mut rng = StdRng::seed_from_u64(66);
        let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let outcome = mem.write_line(11, &line, &enc, &SawCount);
        let total: u32 = outcome.saw_per_word().iter().sum();
        assert_eq!(outcome.total_saw(), total);
    }

    #[test]
    fn read_into_variants_match_allocating_reads_and_reuse_buffers() {
        let mut mem = PcmMemory::new(tiny_config());
        let vcc = Vcc::paper_mlc(64);
        let cf = WriteEnergy::mlc();
        let mut rng = StdRng::seed_from_u64(67);
        let mut decoded = Vec::with_capacity(8);
        let mut raw = Vec::with_capacity(8);
        let (decoded_buf, raw_buf) = (decoded.as_ptr(), raw.as_ptr());
        for addr in 0..5u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            mem.write_line(addr, &line, &vcc, &cf);
            mem.read_line_into(addr, &vcc, &mut decoded);
            assert_eq!(decoded, mem.read_line(addr, &vcc), "row {addr}");
            assert_eq!(decoded, line, "row {addr}");
            mem.read_raw_line_into(addr, &mut raw);
            assert_eq!(raw, mem.read_raw_line(addr), "row {addr}");
        }
        // The warm buffers were reused, never reallocated.
        assert_eq!(decoded.as_ptr(), decoded_buf);
        assert_eq!(raw.as_ptr(), raw_buf);
    }

    #[test]
    fn read_into_variants_agree_on_rows_with_stuck_and_dead_cells() {
        // Rows holding both map-induced stuck cells and wear-induced dead
        // cells must read back identically through the buffer-reuse paths
        // and the allocating paths (the raw stored bits include frozen
        // values in both cases).
        let mut cfg = PcmConfig::scaled(64 * 1024, 150.0);
        cfg.seed = 99;
        let map = FaultMap::uniform(2e-2, CellKind::Mlc, 13);
        let mut mem = PcmMemory::new(cfg).with_fault_map(map);
        let enc = Unencoded::new(64);
        let cf = WriteEnergy::mlc();
        let mut rng = StdRng::seed_from_u64(68);
        let mapped_stuck = {
            // Touch the rows once so the fault map has been applied.
            for addr in 0..4u64 {
                let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
                mem.write_line(addr, &line, &enc, &cf);
            }
            mem.total_stuck_cells()
        };
        assert!(mapped_stuck > 0, "fault map should stick some cells");
        // Hammer the same rows until wear kills additional cells.
        for i in 0..400u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            mem.write_line(i % 4, &line, &enc, &cf);
        }
        assert!(
            mem.stats().dead_cells > 0,
            "the hammer loop should kill cells"
        );
        assert!(mem.total_stuck_cells() > mapped_stuck);

        let mut decoded = Vec::new();
        let mut raw = Vec::new();
        for addr in 0..4u64 {
            mem.read_line_into(addr, &enc, &mut decoded);
            assert_eq!(decoded, mem.read_line(addr, &enc), "row {addr}");
            mem.read_raw_line_into(addr, &mut raw);
            assert_eq!(raw, mem.read_raw_line(addr), "row {addr}");
            // Unencoded decode is the identity, so both views agree.
            assert_eq!(decoded, raw, "row {addr}");
        }
    }

    #[test]
    fn commit_line_matches_per_word_commits() {
        // Committing a line in one batched pass must equal word-by-word
        // writes of the same data (words of a row are disjoint).
        let mut rng = StdRng::seed_from_u64(70);
        let vcc = Vcc::paper_mlc(64);
        let cf = WriteEnergy::mlc();
        let lines: Vec<Vec<u64>> = (0..30)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();

        let mut cfg = PcmConfig::scaled(64 * 1024, 500.0);
        cfg.seed = 17;
        let mut batched = PcmMemory::new(cfg.clone());
        for (i, line) in lines.iter().enumerate() {
            batched.write_line(i as u64 % 4, line, &vcc, &cf);
        }

        let mut word_by_word = PcmMemory::new(cfg);
        for (i, line) in lines.iter().enumerate() {
            for (w, word) in line.iter().enumerate() {
                word_by_word.write_word(i as u64 % 4, w, *word, &vcc, &cf);
            }
        }
        let mut expected = *word_by_word.stats();
        expected.row_writes = batched.stats().row_writes;
        assert_eq!(*batched.stats(), expected);
        for addr in 0..4u64 {
            assert_eq!(
                batched.read_raw_line(addr),
                word_by_word.read_raw_line(addr)
            );
        }
    }

    #[test]
    fn swar_commit_matches_scalar_oracle_on_a_wear_heavy_stream() {
        // End-to-end differential check inside the crate (the full
        // property-based suite lives in tests/commit_oracle.rs): a
        // fault-mapped, low-endurance memory driven by both commit paths
        // stays bit-identical in outcomes, stats, stored bits and deaths.
        let mut cfg = PcmConfig::scaled(64 * 1024, 120.0);
        cfg.seed = 3;
        cfg.energy_weighted_wear = true;
        let map = FaultMap::uniform(2e-2, CellKind::Mlc, 7);
        let fnw = Fnw::with_sub_block(64, 16);
        let cf = opt_saw_then_energy();

        let mut swar = PcmMemory::new(cfg.clone()).with_fault_map(map);
        let mut scalar = PcmMemory::new(cfg).with_fault_map(map);
        let mut rng = StdRng::seed_from_u64(71);
        for i in 0..300u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            let a = swar.write_line(i % 4, &line, &fnw, &cf);
            let b = scalar.write_line_scalar(i % 4, &line, &fnw, &cf);
            assert_eq!(a, b, "line {i}");
        }
        assert_eq!(swar.stats(), scalar.stats());
        assert!(swar.stats().dead_cells > 0, "stream should kill cells");
        for addr in 0..4u64 {
            assert_eq!(swar.read_raw_line(addr), scalar.read_raw_line(addr));
        }
        assert_eq!(swar.total_stuck_cells(), scalar.total_stuck_cells());
    }

    #[test]
    #[should_panic(expected = "aux bits")]
    fn commit_line_rejects_oversized_aux_budget() {
        // The public batched commit must bound the aux region itself: an
        // oversized width would spill wear accounting into the next word.
        let mut mem = PcmMemory::new(tiny_config());
        let encoded = vec![Encoded {
            codeword: coset::block::Block::zeros(64),
            aux: 0,
            cost: coset::cost::Cost::ZERO,
        }];
        mem.commit_line(0, &encoded, 64);
    }

    #[test]
    #[should_panic(expected = "aux bits")]
    fn rejects_encoder_with_too_many_aux_bits() {
        let cfg = PcmConfig {
            aux_bits_per_word: 2,
            ..tiny_config()
        };
        let mut mem = PcmMemory::new(cfg);
        let vcc = Vcc::paper_mlc(256); // needs 8 aux bits
        mem.write_word(0, 0, 42, &vcc, &WriteEnergy::mlc());
    }
}
