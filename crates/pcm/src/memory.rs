//! The sparse MLC/SLC PCM array simulator.
//!
//! [`PcmMemory`] models a byte-addressable PCM module at row (cache line)
//! granularity. Rows are materialized lazily with pseudo-random initial
//! contents (the paper initializes every address from a cryptographically
//! strong generator), per-cell endurance limits are sampled on first touch,
//! and every write goes through the read-modify-write encode path:
//!
//! 1. read the current row contents and stuck-cell state,
//! 2. let the configured [`Encoder`] pick the cheapest codeword,
//! 3. program only the cells that change, skipping stuck cells,
//! 4. charge Table-I energy per programmed cell, accrue wear, and retire
//!    cells that exceed their endurance limit (they become stuck at their
//!    final value).

use std::collections::HashMap;

use coset::cost::{CostFunction, TransitionEnergy};
use coset::symbol::CellKind;
use coset::{EncodeScratch, Encoded, Encoder, WriteContext};
use memcrypt::initial_row_contents;

use crate::config::PcmConfig;
use crate::endurance::EnduranceModel;
use crate::fault::FaultMap;
use crate::row::Row;
use crate::stats::{LineWriteOutcome, MemoryStats, WordWriteOutcome};

/// Reusable buffers for the encoded line/word write path.
///
/// Owns the encoder's [`EncodeScratch`] plus the per-line context and result
/// vectors, so repeated [`PcmMemory::write_line_with`] calls reuse one set
/// of allocations instead of re-allocating per candidate and per word.
#[derive(Debug, Default)]
pub struct LineWriteScratch {
    encode: EncodeScratch,
    ctxs: Vec<WriteContext>,
    encoded: Vec<Encoded>,
}

impl LineWriteScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        LineWriteScratch::default()
    }
}

/// A simulated PCM module.
pub struct PcmMemory {
    config: PcmConfig,
    endurance: EnduranceModel,
    energies: TransitionEnergy,
    fault_map: Option<FaultMap>,
    rows: HashMap<u64, Row>,
    stats: MemoryStats,
}

impl std::fmt::Debug for PcmMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmMemory")
            .field("config", &self.config)
            .field("rows_touched", &self.rows.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PcmMemory {
    /// Creates a memory with the given configuration and no pre-existing
    /// faults (cells only fail through wear).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(config: PcmConfig) -> Self {
        config.validate();
        let endurance = EnduranceModel::paper_default(config.endurance_mean, config.seed);
        let energies = match config.cell_kind {
            CellKind::Mlc => TransitionEnergy::mlc_table_i(),
            CellKind::Slc => TransitionEnergy::slc_symmetric(),
        };
        PcmMemory {
            config,
            endurance,
            energies,
            fault_map: None,
            rows: HashMap::new(),
            stats: MemoryStats::default(),
        }
    }

    /// Attaches a pre-generated fault map (the paper's fixed-incidence
    /// "snapshot" experiments). Rows materialized afterwards start with the
    /// mapped cells already stuck.
    pub fn with_fault_map(mut self, map: FaultMap) -> Self {
        assert_eq!(
            map.cell_kind(),
            self.config.cell_kind,
            "fault map cell kind must match the memory"
        );
        self.fault_map = Some(map);
        self
    }

    /// Replaces the default endurance model.
    pub fn with_endurance(mut self, endurance: EnduranceModel) -> Self {
        self.endurance = endurance;
        self
    }

    /// The memory configuration.
    pub fn config(&self) -> &PcmConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Number of rows that have been touched (materialized).
    pub fn rows_touched(&self) -> usize {
        self.rows.len()
    }

    /// Total stuck cells across all materialized rows.
    pub fn total_stuck_cells(&self) -> usize {
        self.rows.values().map(Row::stuck_cells).sum()
    }

    /// Direct read-only access to a materialized row, if it exists.
    pub fn row(&self, row_addr: u64) -> Option<&Row> {
        self.rows.get(&row_addr)
    }

    fn materialize(&mut self, row_addr: u64) -> &mut Row {
        let config = &self.config;
        let endurance = &self.endurance;
        let fault_map = &self.fault_map;
        self.rows.entry(row_addr).or_insert_with(|| {
            let words = config.words_per_row();
            let mut init = Vec::with_capacity(words);
            let raw = initial_row_contents(config.seed, row_addr);
            for w in 0..words {
                init.push(raw[w % raw.len()]);
            }
            let mut row = Row::new(config, endurance, row_addr, &init);
            // Apply the pre-generated fault map: mapped cells are stuck and
            // the stored value reflects the frozen symbol.
            if let Some(map) = fault_map {
                let bpc = config.cell_kind.bits_per_cell();
                let total = row.cells_per_word_total() * words;
                for cell in 0..total {
                    if let Some(sym) = map.stuck_symbol(row_addr, cell) {
                        row.stick_cell(cell, sym as u8);
                    }
                }
                // Force the stored bits of stuck data/aux cells to the frozen
                // symbol so reads observe the fault.
                for w in 0..words {
                    let mut data = row.data_word(w);
                    let mut aux = row.aux_word(w);
                    let base = row.first_cell_of_word(w);
                    for c in 0..row.data_cells_per_word() {
                        if row.is_stuck(base + c) {
                            let shift = c * bpc;
                            let mask = ((1u64 << bpc) - 1) << shift;
                            data = (data & !mask) | ((row.stuck_symbol(base + c) as u64) << shift);
                        }
                    }
                    let aux_base = row.first_aux_cell_of_word(w);
                    for c in 0..row.aux_cells_per_word() {
                        if row.is_stuck(aux_base + c) {
                            let shift = c * bpc;
                            let mask = ((1u64 << bpc) - 1) << shift;
                            aux =
                                (aux & !mask) | ((row.stuck_symbol(aux_base + c) as u64) << shift);
                        }
                    }
                    row.store_word(w, data, aux);
                }
            }
            row
        })
    }

    /// Builds the encoder-facing [`WriteContext`] for word `w` of a row.
    pub fn write_context(&mut self, row_addr: u64, w: usize, aux_bits: u32) -> WriteContext {
        let word_bits = self.config.word_bits;
        let row = self.materialize(row_addr);
        let old_data = row.data_block(w, word_bits);
        let old_aux = row.aux_word(w);
        let stuck = row.stuck_bits_for_data(w, word_bits);
        let (aux_mask, aux_value) = row.stuck_bits_for_aux(w);
        WriteContext::new(old_data, old_aux, aux_bits)
            .with_stuck(stuck)
            .with_stuck_aux(aux_mask, aux_value)
    }

    /// Writes one already-encrypted word through an encoder. Returns the
    /// per-word outcome (energy, programming events, SAW cells, new dead
    /// cells).
    ///
    /// # Panics
    ///
    /// Panics if the encoder's block width does not match the configured
    /// word width, or its auxiliary budget exceeds the per-word budget.
    pub fn write_word(
        &mut self,
        row_addr: u64,
        w: usize,
        data: u64,
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> WordWriteOutcome {
        self.write_word_with(
            row_addr,
            w,
            data,
            encoder,
            cost,
            &mut LineWriteScratch::new(),
        )
    }

    /// Session variant of [`PcmMemory::write_word`]: reuses the scratch's
    /// buffers so steady-state word writes stay off the allocator's hot
    /// path.
    pub fn write_word_with(
        &mut self,
        row_addr: u64,
        w: usize,
        data: u64,
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) -> WordWriteOutcome {
        self.check_encoder(encoder);
        assert!(w < self.config.words_per_row(), "word index out of range");

        let ctx = self.write_context(row_addr, w, encoder.aux_bits());
        encoder.encode_line(
            &[data],
            std::slice::from_ref(&ctx),
            cost,
            &mut scratch.encode,
            &mut scratch.encoded,
        );
        let encoded = &scratch.encoded[0];
        let outcome = self.commit_word(
            row_addr,
            w,
            encoded.codeword.as_u64(),
            encoded.aux,
            encoder.aux_bits(),
        );
        self.stats.absorb(&outcome);
        outcome
    }

    fn check_encoder(&self, encoder: &dyn Encoder) {
        assert_eq!(
            encoder.block_bits(),
            self.config.word_bits,
            "encoder block width must match the memory word width"
        );
        assert!(
            encoder.aux_bits() <= self.config.aux_bits_per_word,
            "encoder needs {} aux bits but the memory only provides {}",
            encoder.aux_bits(),
            self.config.aux_bits_per_word
        );
    }

    /// Programs the chosen codeword into the array, applying stuck cells,
    /// charging energy and accruing wear.
    fn commit_word(
        &mut self,
        row_addr: u64,
        w: usize,
        desired_data: u64,
        desired_aux: u64,
        aux_bits: u32,
    ) -> WordWriteOutcome {
        let bpc = self.config.cell_kind.bits_per_cell();
        let cell_mask = (1u64 << bpc) - 1;
        let is_mlc = self.config.cell_kind == CellKind::Mlc;
        let energy_weighted = self.config.energy_weighted_wear;
        let energies = self.energies.clone();
        let data_cells = self.config.cells_per_word();
        let aux_cells_used = (aux_bits as usize).div_ceil(bpc);

        let row = self.materialize(row_addr);
        let mut outcome = WordWriteOutcome::default();

        let old_data = row.data_word(w);
        let old_aux = row.aux_word(w);
        let mut stored_data = old_data;
        let mut stored_aux = old_aux;

        // Program one region (data or aux) of the word.
        let program_region = |row: &mut Row,
                              base_cell: usize,
                              cells: usize,
                              old: u64,
                              desired: u64,
                              stored: &mut u64,
                              outcome: &mut WordWriteOutcome| {
            for c in 0..cells {
                let shift = c * bpc;
                let old_sym = ((old >> shift) & cell_mask) as u8;
                let new_sym = ((desired >> shift) & cell_mask) as u8;
                let cell = base_cell + c;
                if row.is_stuck(cell) {
                    let frozen = row.stuck_symbol(cell);
                    if frozen != new_sym {
                        outcome.saw_cells += 1;
                    }
                    // The array keeps the frozen value regardless.
                    *stored = (*stored & !(cell_mask << shift)) | ((frozen as u64) << shift);
                    continue;
                }
                if old_sym != new_sym {
                    let e = energies.energy(old_sym, new_sym);
                    outcome.energy_pj += e;
                    outcome.cells_programmed += 1;
                    if is_mlc && (new_sym & 1) == 1 {
                        outcome.high_energy_programs += 1;
                    }
                    outcome.bit_flips += (old_sym ^ new_sym).count_ones();
                    let wear_units = if energy_weighted {
                        ((e / crate::energy::LOW_TRANSITION_PJ).round() as u64).max(1)
                    } else {
                        1
                    };
                    if row.add_wear(cell, wear_units) {
                        outcome.new_dead_cells += 1;
                        // The final programming succeeds; the cell is then
                        // frozen at the value just written.
                        row.stick_cell(cell, new_sym);
                    }
                }
                *stored = (*stored & !(cell_mask << shift)) | ((new_sym as u64) << shift);
            }
        };

        let data_base = row.first_cell_of_word(w);
        program_region(
            row,
            data_base,
            data_cells,
            old_data,
            desired_data,
            &mut stored_data,
            &mut outcome,
        );
        let aux_base = row.first_aux_cell_of_word(w);
        program_region(
            row,
            aux_base,
            aux_cells_used,
            old_aux,
            desired_aux,
            &mut stored_aux,
            &mut outcome,
        );

        row.store_word(w, stored_data, stored_aux);
        outcome
    }

    /// Writes a full already-encrypted row (cache line) through an encoder.
    pub fn write_line(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
    ) -> LineWriteOutcome {
        self.write_line_with(row_addr, line, encoder, cost, &mut LineWriteScratch::new())
    }

    /// Session variant of [`PcmMemory::write_line`]: batches the whole line
    /// through [`Encoder::encode_line`] with reusable scratch buffers, the
    /// entry point the write pipeline drives.
    ///
    /// Word regions of a row are disjoint (data cells, auxiliary cells and
    /// wear state never overlap between words), so building every word's
    /// context up front and committing afterwards is exactly equivalent to
    /// the word-by-word read-modify-write loop.
    pub fn write_line_with(
        &mut self,
        row_addr: u64,
        line: &[u64],
        encoder: &dyn Encoder,
        cost: &dyn CostFunction,
        scratch: &mut LineWriteScratch,
    ) -> LineWriteOutcome {
        assert_eq!(
            line.len(),
            self.config.words_per_row(),
            "line must contain exactly one row of words"
        );
        self.check_encoder(encoder);
        self.stats.row_writes += 1;

        scratch.ctxs.clear();
        for w in 0..line.len() {
            let ctx = self.write_context(row_addr, w, encoder.aux_bits());
            scratch.ctxs.push(ctx);
        }
        encoder.encode_line(
            line,
            &scratch.ctxs,
            cost,
            &mut scratch.encode,
            &mut scratch.encoded,
        );
        let words = scratch
            .encoded
            .iter()
            .enumerate()
            .map(|(w, encoded)| {
                let outcome = self.commit_word(
                    row_addr,
                    w,
                    encoded.codeword.as_u64(),
                    encoded.aux,
                    encoder.aux_bits(),
                );
                self.stats.absorb(&outcome);
                outcome
            })
            .collect();
        LineWriteOutcome { words }
    }

    /// Reads and decodes a full row with the encoder that wrote it.
    /// Stuck-at-wrong cells naturally corrupt the returned data.
    pub fn read_line(&mut self, row_addr: u64, encoder: &dyn Encoder) -> Vec<u64> {
        let mut out = Vec::new();
        self.read_line_into(row_addr, encoder, &mut out);
        out
    }

    /// Session variant of [`PcmMemory::read_line`]: decodes the row into the
    /// caller's buffer so steady-state reads reuse one allocation (the read
    /// mirror of [`PcmMemory::write_line_with`]).
    pub fn read_line_into(&mut self, row_addr: u64, encoder: &dyn Encoder, out: &mut Vec<u64>) {
        let word_bits = self.config.word_bits;
        let words = self.config.words_per_row();
        let row = self.materialize(row_addr);
        out.clear();
        out.extend((0..words).map(|w| {
            let stored = row.data_block(w, word_bits);
            encoder.decode(&stored, row.aux_word(w)).as_u64()
        }));
    }

    /// Reads the raw (still encoded) contents of a row.
    pub fn read_raw_line(&mut self, row_addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.read_raw_line_into(row_addr, &mut out);
        out
    }

    /// Session variant of [`PcmMemory::read_raw_line`], reusing the caller's
    /// buffer.
    pub fn read_raw_line_into(&mut self, row_addr: u64, out: &mut Vec<u64>) {
        let words = self.config.words_per_row();
        let row = self.materialize(row_addr);
        out.clear();
        out.extend((0..words).map(|w| row.data_word(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coset::cost::{opt_saw_then_energy, SawCount, WriteEnergy};
    use coset::{Fnw, Rcc, Unencoded, Vcc};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_config() -> PcmConfig {
        PcmConfig::scaled(1024 * 1024, 1e3)
    }

    #[test]
    fn unencoded_write_read_roundtrip() {
        let mut mem = PcmMemory::new(tiny_config());
        let enc = Unencoded::new(64);
        let cf = WriteEnergy::mlc();
        let line: Vec<u64> = (0..8).map(|i| 0x1111_1111_1111_1111u64 * i).collect();
        mem.write_line(7, &line, &enc, &cf);
        assert_eq!(mem.read_line(7, &enc), line);
        assert_eq!(mem.stats().row_writes, 1);
        assert_eq!(mem.stats().word_writes, 8);
        assert!(mem.stats().energy_pj > 0.0);
        assert_eq!(mem.rows_touched(), 1);
    }

    #[test]
    fn vcc_write_read_roundtrip_without_faults() {
        let mut mem = PcmMemory::new(tiny_config());
        let vcc = Vcc::paper_mlc(256);
        let cf = WriteEnergy::mlc();
        let mut rng = StdRng::seed_from_u64(60);
        for addr in 0..20u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            mem.write_line(addr, &line, &vcc, &cf);
            assert_eq!(mem.read_line(addr, &vcc), line, "row {addr}");
        }
    }

    #[test]
    fn vcc_uses_less_energy_than_unencoded() {
        let cfg = tiny_config();
        let mut rng = StdRng::seed_from_u64(61);
        let lines: Vec<Vec<u64>> = (0..100)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let cf = WriteEnergy::mlc();

        let mut unenc_mem = PcmMemory::new(cfg.clone());
        let unenc = Unencoded::new(64);
        for (i, line) in lines.iter().enumerate() {
            unenc_mem.write_line(i as u64 % 16, line, &unenc, &cf);
        }

        let mut vcc_mem = PcmMemory::new(cfg);
        let vcc = Vcc::paper_mlc(256);
        for (i, line) in lines.iter().enumerate() {
            vcc_mem.write_line(i as u64 % 16, line, &vcc, &cf);
        }

        let e_unenc = unenc_mem.stats().energy_pj;
        let e_vcc = vcc_mem.stats().energy_pj;
        assert!(
            e_vcc < 0.85 * e_unenc,
            "VCC energy {e_vcc:.0} pJ should be well below unencoded {e_unenc:.0} pJ"
        );
    }

    #[test]
    fn fault_map_produces_saw_for_unencoded_and_fewer_for_rcc() {
        let cfg = tiny_config();
        let map = FaultMap::uniform(1e-2, CellKind::Mlc, 77);
        let mut rng = StdRng::seed_from_u64(62);
        let lines: Vec<Vec<u64>> = (0..200)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let cf = opt_saw_then_energy();

        let mut unenc_mem = PcmMemory::new(cfg.clone()).with_fault_map(map);
        let unenc = Unencoded::new(64);
        for (i, line) in lines.iter().enumerate() {
            unenc_mem.write_line(i as u64 % 64, line, &unenc, &cf);
        }

        let mut rcc_mem = PcmMemory::new(cfg).with_fault_map(map);
        let rcc = Rcc::random(64, 256, &mut rng);
        for (i, line) in lines.iter().enumerate() {
            rcc_mem.write_line(i as u64 % 64, line, &rcc, &cf);
        }

        let saw_unenc = unenc_mem.stats().saw_cells;
        let saw_rcc = rcc_mem.stats().saw_cells;
        assert!(saw_unenc > 0, "faulty memory must show SAW for unencoded");
        assert!(
            (saw_rcc as f64) < 0.2 * saw_unenc as f64,
            "RCC-256 should mask most SAW cells ({saw_rcc} vs {saw_unenc})"
        );
    }

    #[test]
    fn wear_eventually_kills_cells_and_fnw_programs_fewer_expensive_levels() {
        // With a tiny endurance, repeated writes to one row kill cells.
        // FNW optimizing MLC write energy must issue fewer high-energy
        // programming events than unencoded writeback of the same stream
        // (its own auxiliary cells wear too, so total dead cells can be
        // slightly higher — the energy-relevant metric is what matters).
        let cfg = PcmConfig::scaled(64 * 1024, 200.0);
        let cf = WriteEnergy::mlc();

        let run = |encoder: &dyn Encoder| {
            let mut mem = PcmMemory::new(cfg.clone());
            let mut local_rng = StdRng::seed_from_u64(64);
            for _ in 0..600 {
                let line: Vec<u64> = (0..8).map(|_| local_rng.gen()).collect();
                mem.write_line(3, &line, encoder, &cf);
            }
            (mem.stats().dead_cells, mem.stats().high_energy_programs)
        };

        let (unenc_dead, unenc_high) = run(&Unencoded::new(64));
        let (_fnw_dead, fnw_high) = run(&Fnw::with_sub_block(64, 16));
        assert!(unenc_dead > 0, "unencoded stream should wear out cells");
        assert!(
            fnw_high < unenc_high,
            "FNW should program fewer high-energy levels ({fnw_high} vs {unenc_high})"
        );
    }

    #[test]
    fn saw_objective_reduces_saw_compared_to_energy_objective() {
        let cfg = tiny_config();
        let map = FaultMap::uniform(2e-2, CellKind::Mlc, 5);
        let mut rng = StdRng::seed_from_u64(65);
        let lines: Vec<Vec<u64>> = (0..150)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let vcc = Vcc::paper_stored(256, &mut rng);

        let mut saw_first = PcmMemory::new(cfg.clone()).with_fault_map(map);
        for (i, line) in lines.iter().enumerate() {
            saw_first.write_line(i as u64 % 32, line, &vcc, &opt_saw_then_energy());
        }
        let mut energy_only = PcmMemory::new(cfg).with_fault_map(map);
        for (i, line) in lines.iter().enumerate() {
            energy_only.write_line(i as u64 % 32, line, &vcc, &WriteEnergy::mlc());
        }
        assert!(
            saw_first.stats().saw_cells <= energy_only.stats().saw_cells,
            "SAW-first objective should not leave more SAW cells"
        );
    }

    #[test]
    fn saw_count_objective_alone_matches_stats() {
        // Write with the pure SAW objective and confirm the recorded SAW
        // cells equal what a manual re-check of stuck cells reports.
        let cfg = tiny_config();
        let map = FaultMap::uniform(5e-2, CellKind::Mlc, 123);
        let mut mem = PcmMemory::new(cfg).with_fault_map(map);
        let enc = Unencoded::new(64);
        let mut rng = StdRng::seed_from_u64(66);
        let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let outcome = mem.write_line(11, &line, &enc, &SawCount);
        let total: u32 = outcome.saw_per_word().iter().sum();
        assert_eq!(outcome.total_saw(), total);
    }

    #[test]
    fn read_into_variants_match_allocating_reads_and_reuse_buffers() {
        let mut mem = PcmMemory::new(tiny_config());
        let vcc = Vcc::paper_mlc(64);
        let cf = WriteEnergy::mlc();
        let mut rng = StdRng::seed_from_u64(67);
        let mut decoded = Vec::with_capacity(8);
        let mut raw = Vec::with_capacity(8);
        let (decoded_buf, raw_buf) = (decoded.as_ptr(), raw.as_ptr());
        for addr in 0..5u64 {
            let line: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
            mem.write_line(addr, &line, &vcc, &cf);
            mem.read_line_into(addr, &vcc, &mut decoded);
            assert_eq!(decoded, mem.read_line(addr, &vcc), "row {addr}");
            assert_eq!(decoded, line, "row {addr}");
            mem.read_raw_line_into(addr, &mut raw);
            assert_eq!(raw, mem.read_raw_line(addr), "row {addr}");
        }
        // The warm buffers were reused, never reallocated.
        assert_eq!(decoded.as_ptr(), decoded_buf);
        assert_eq!(raw.as_ptr(), raw_buf);
    }

    #[test]
    #[should_panic(expected = "aux bits")]
    fn rejects_encoder_with_too_many_aux_bits() {
        let cfg = PcmConfig {
            aux_bits_per_word: 2,
            ..tiny_config()
        };
        let mut mem = PcmMemory::new(cfg);
        let vcc = Vcc::paper_mlc(256); // needs 8 aux bits
        mem.write_word(0, 0, 42, &vcc, &WriteEnergy::mlc());
    }
}
