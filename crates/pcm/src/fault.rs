//! Pre-generated fault maps.
//!
//! Several of the paper's experiments (Figures 2, 8, 9, 10) evaluate a
//! memory "snapshot" with a fixed fault incidence rate of 10⁻² — i.e. every
//! cell is independently stuck with that probability, before any additional
//! wear accumulates. [`FaultMap`] reproduces that methodology without
//! storing a per-cell table for the whole module: whether a cell is stuck,
//! and the symbol it is stuck at, are derived deterministically from a hash
//! of (map seed, row, cell), so arbitrarily large memories can be modeled.
//!
//! An optional clustering factor concentrates faults in a subset of "weak"
//! rows, reflecting the spatially correlated process variation discussed in
//! Section II-A.

use coset::symbol::CellKind;
use coset::StuckBits;
use memcrypt::SplitMix64;

/// A deterministic, sparse description of stuck cells at a fixed incidence
/// rate.
#[derive(Debug, Clone, Copy)]
pub struct FaultMap {
    rate: f64,
    cell_kind: CellKind,
    seed: u64,
    /// Fraction of rows designated "weak" (0 disables clustering).
    weak_row_fraction: f64,
    /// Multiplier applied to the fault rate of weak rows; the rate of the
    /// remaining rows is reduced to keep the average at `rate`.
    weak_row_boost: f64,
}

impl FaultMap {
    /// Creates a fault map with independent, uniformly spread faults.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn uniform(rate: f64, cell_kind: CellKind, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        FaultMap {
            rate,
            cell_kind,
            seed,
            weak_row_fraction: 0.0,
            weak_row_boost: 1.0,
        }
    }

    /// Creates a fault map where `weak_row_fraction` of the rows carry
    /// `weak_row_boost`× the base rate (clipped to 1.0), and the remaining
    /// rows are derated so the average incidence stays at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range or the derated rate would be
    /// negative.
    pub fn clustered(
        rate: f64,
        cell_kind: CellKind,
        seed: u64,
        weak_row_fraction: f64,
        weak_row_boost: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        assert!((0.0..1.0).contains(&weak_row_fraction));
        assert!(weak_row_boost >= 1.0);
        let strong_rate =
            (rate - weak_row_fraction * rate * weak_row_boost) / (1.0 - weak_row_fraction);
        assert!(
            strong_rate >= 0.0,
            "weak-row boost {weak_row_boost} with fraction {weak_row_fraction} exceeds the budget"
        );
        FaultMap {
            rate,
            cell_kind,
            seed,
            weak_row_fraction,
            weak_row_boost,
        }
    }

    /// The paper's snapshot configuration: 10⁻² incidence, mild clustering.
    pub fn paper_snapshot(seed: u64) -> Self {
        Self::clustered(1e-2, CellKind::Mlc, seed, 0.1, 3.0)
    }

    /// Nominal average fault rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Cell kind the map describes.
    pub fn cell_kind(&self) -> CellKind {
        self.cell_kind
    }

    fn row_rate(&self, row_addr: u64) -> f64 {
        if self.weak_row_fraction == 0.0 {
            return self.rate;
        }
        let h = SplitMix64::mix(self.seed ^ SplitMix64::mix(row_addr.rotate_left(7)));
        let u = (h >> 11) as f64 / 2f64.powi(53);
        if u < self.weak_row_fraction {
            (self.rate * self.weak_row_boost).min(1.0)
        } else {
            (self.rate - self.weak_row_fraction * self.rate * self.weak_row_boost)
                / (1.0 - self.weak_row_fraction)
        }
    }

    /// Whether the cell at (`row_addr`, `cell_idx`) is stuck, and if so the
    /// symbol value it is frozen at.
    pub fn stuck_symbol(&self, row_addr: u64, cell_idx: usize) -> Option<u64> {
        let rate = self.row_rate(row_addr);
        if rate == 0.0 {
            return None;
        }
        let h = SplitMix64::mix(
            self.seed ^ SplitMix64::mix(row_addr) ^ SplitMix64::mix(cell_idx as u64 + 1),
        );
        let u = (h >> 11) as f64 / 2f64.powi(53);
        if u < rate {
            let levels = self.cell_kind.levels() as u64;
            Some(SplitMix64::mix(h) % levels)
        } else {
            None
        }
    }

    /// Builds the [`StuckBits`] view for a `word_bits`-wide word starting at
    /// cell index `first_cell` of row `row_addr`.
    pub fn stuck_bits_for_word(
        &self,
        row_addr: u64,
        first_cell: usize,
        word_bits: usize,
    ) -> StuckBits {
        let bpc = self.cell_kind.bits_per_cell();
        let cells = word_bits / bpc;
        let mut stuck = StuckBits::none(word_bits);
        for c in 0..cells {
            if let Some(sym) = self.stuck_symbol(row_addr, first_cell + c) {
                stuck.stick_cell(c, bpc, sym);
            }
        }
        stuck
    }

    /// Counts stuck cells in the first `cells` cells of `rows` rows —
    /// useful for verifying the empirical incidence rate.
    pub fn count_stuck(&self, rows: u64, cells_per_row: usize) -> u64 {
        let mut count = 0;
        for r in 0..rows {
            for c in 0..cells_per_row {
                if self.stuck_symbol(r, c).is_some() {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_rate_matches_nominal() {
        let map = FaultMap::uniform(1e-2, CellKind::Mlc, 1);
        let rows = 2000;
        let cells = 288;
        let stuck = map.count_stuck(rows, cells);
        let empirical = stuck as f64 / (rows as f64 * cells as f64);
        assert!(
            (empirical - 1e-2).abs() < 2e-3,
            "empirical rate {empirical} too far from 1e-2"
        );
    }

    #[test]
    fn clustered_map_preserves_average_rate() {
        let map = FaultMap::clustered(1e-2, CellKind::Mlc, 3, 0.1, 3.0);
        let rows = 4000;
        let cells = 288;
        let stuck = map.count_stuck(rows, cells);
        let empirical = stuck as f64 / (rows as f64 * cells as f64);
        assert!(
            (empirical - 1e-2).abs() < 2e-3,
            "clustered empirical rate {empirical}"
        );
        assert_eq!(map.rate(), 1e-2);
        assert_eq!(map.cell_kind(), CellKind::Mlc);
    }

    #[test]
    fn clustered_map_concentrates_faults() {
        let map = FaultMap::clustered(1e-2, CellKind::Mlc, 3, 0.1, 3.0);
        let cells = 288usize;
        let mut per_row: Vec<u64> = Vec::new();
        for r in 0..2000u64 {
            per_row.push(
                (0..cells)
                    .filter(|c| map.stuck_symbol(r, *c).is_some())
                    .count() as u64,
            );
        }
        // Weak rows (top decile) should hold noticeably more than 10% of the
        // faults.
        let mut sorted = per_row.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take(200).sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top_decile as f64 > 0.2 * total as f64,
            "top decile holds only {top_decile}/{total} faults"
        );
    }

    #[test]
    fn stuck_symbols_are_deterministic_and_in_range() {
        let map = FaultMap::uniform(0.05, CellKind::Mlc, 9);
        for r in 0..200u64 {
            for c in 0..64usize {
                let a = map.stuck_symbol(r, c);
                let b = map.stuck_symbol(r, c);
                assert_eq!(a, b);
                if let Some(sym) = a {
                    assert!(sym < 4);
                }
            }
        }
    }

    #[test]
    fn stuck_bits_for_word_covers_whole_cells() {
        let map = FaultMap::uniform(0.2, CellKind::Mlc, 11);
        let stuck = map.stuck_bits_for_word(5, 0, 64);
        assert_eq!(stuck.len(), 64);
        // Every stuck cell freezes both of its bits.
        for cell in 0..32 {
            let a = stuck.is_stuck(2 * cell);
            let b = stuck.is_stuck(2 * cell + 1);
            assert_eq!(a, b, "cell {cell} is half-stuck");
        }
    }

    #[test]
    fn zero_rate_has_no_faults() {
        let map = FaultMap::uniform(0.0, CellKind::Slc, 4);
        assert_eq!(map.count_stuck(500, 64), 0);
    }

    #[test]
    fn slc_stuck_symbols_are_binary() {
        let map = FaultMap::uniform(0.3, CellKind::Slc, 13);
        for r in 0..100u64 {
            for c in 0..64usize {
                if let Some(sym) = map.stuck_symbol(r, c) {
                    assert!(sym < 2);
                }
            }
        }
    }
}
