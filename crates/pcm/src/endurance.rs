//! Cell endurance modeling.
//!
//! Each PCM cell tolerates a finite number of programming events before it
//! becomes stuck in its present state (Section II-A). Following the paper's
//! lifetime methodology (Section VI-A), per-cell lifetimes are drawn from a
//! normal distribution around the nominal endurance (10^8 writes) with a
//! coefficient of variation of 0.2, reflecting process variation; cells in
//! the same row draw from the same generator so spatially correlated
//! weakness emerges from a shared row-level factor.

use memcrypt::SplitMix64;

/// Deterministic sampler of per-cell endurance limits.
#[derive(Debug, Clone, Copy)]
pub struct EnduranceModel {
    mean: f64,
    cov: f64,
    /// Strength of the row-level common factor in [0, 1): 0 = fully
    /// independent cells, larger values make weak cells cluster in rows
    /// (Section II-A cites spatially correlated process variation).
    row_correlation: f64,
    seed: u64,
}

impl EnduranceModel {
    /// Creates an endurance model.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `cov` is not in `[0, 1)`, or `row_correlation`
    /// is not in `[0, 1)`.
    pub fn new(mean: f64, cov: f64, row_correlation: f64, seed: u64) -> Self {
        assert!(mean > 0.0, "mean endurance must be positive");
        assert!((0.0..1.0).contains(&cov), "CoV must be in [0, 1)");
        assert!(
            (0.0..1.0).contains(&row_correlation),
            "row correlation must be in [0, 1)"
        );
        EnduranceModel {
            mean,
            cov,
            row_correlation,
            seed,
        }
    }

    /// The paper's default: CoV 0.2, moderate spatial correlation.
    pub fn paper_default(mean: f64, seed: u64) -> Self {
        Self::new(mean, 0.2, 0.3, seed)
    }

    /// Mean endurance in writes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Deterministically samples the endurance limit (in programming events)
    /// of cell `cell_idx` in row `row_addr`.
    ///
    /// The lifetime is `mean · (1 + cov · z)` clamped to at least one write,
    /// where `z` mixes a row-level and a cell-level standard normal draw
    /// according to the configured row correlation.
    pub fn cell_limit(&self, row_addr: u64, cell_idx: usize) -> u64 {
        let row_z = standard_normal(hash3(self.seed, row_addr, u64::MAX));
        let cell_z = standard_normal(hash3(self.seed, row_addr, cell_idx as u64));
        let rho = self.row_correlation;
        let z = rho.sqrt() * row_z + (1.0 - rho).sqrt() * cell_z;
        let lifetime = self.mean * (1.0 + self.cov * z);
        lifetime.max(1.0).round() as u64
    }
}

/// Mixes three 64-bit values into one hash.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    SplitMix64::mix(a ^ SplitMix64::mix(b ^ SplitMix64::mix(c)))
}

/// Converts a 64-bit hash into a standard normal deviate via Box–Muller on
/// two sub-hashes.
fn standard_normal(h: u64) -> f64 {
    // Two uniforms in (0, 1) from the two halves of a remixed hash.
    let h2 = SplitMix64::mix(h);
    let u1 = ((h >> 11) as f64 + 1.0) / (2f64.powi(53) + 2.0);
    let u2 = ((h2 >> 11) as f64 + 1.0) / (2f64.powi(53) + 2.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_cell() {
        let m = EnduranceModel::paper_default(1e6, 7);
        assert_eq!(m.cell_limit(10, 3), m.cell_limit(10, 3));
        assert_ne!(m.cell_limit(10, 3), m.cell_limit(10, 4));
        assert_ne!(m.cell_limit(10, 3), m.cell_limit(11, 3));
        assert_eq!(m.mean(), 1e6);
    }

    #[test]
    fn distribution_statistics() {
        let m = EnduranceModel::new(1e6, 0.2, 0.0, 99);
        let n = 20_000usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| m.cell_limit(i as u64 / 256, i % 256) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt();
        assert!((mean - 1e6).abs() / 1e6 < 0.02, "mean off: {mean}");
        assert!((std / mean - 0.2).abs() < 0.03, "cov off: {}", std / mean);
    }

    #[test]
    fn lifetimes_never_zero() {
        // Even with a huge CoV the clamp keeps lifetimes >= 1.
        let m = EnduranceModel::new(10.0, 0.9, 0.0, 1);
        for i in 0..5000 {
            assert!(m.cell_limit(i, 0) >= 1);
        }
    }

    #[test]
    fn row_correlation_clusters_weak_cells() {
        // With strong row correlation, the variance of row-mean lifetimes is
        // much larger than with independent cells.
        let correlated = EnduranceModel::new(1e6, 0.2, 0.8, 5);
        let independent = EnduranceModel::new(1e6, 0.2, 0.0, 5);
        let row_mean_var = |m: &EnduranceModel| {
            let rows = 200u64;
            let cells = 64usize;
            let means: Vec<f64> = (0..rows)
                .map(|r| (0..cells).map(|c| m.cell_limit(r, c) as f64).sum::<f64>() / cells as f64)
                .collect();
            let grand = means.iter().sum::<f64>() / rows as f64;
            means.iter().map(|x| (x - grand).powi(2)).sum::<f64>() / rows as f64
        };
        assert!(
            row_mean_var(&correlated) > 5.0 * row_mean_var(&independent),
            "row correlation should inflate between-row variance"
        );
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| standard_normal(SplitMix64::mix(i)))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "CoV")]
    fn rejects_bad_cov() {
        EnduranceModel::new(1e6, 1.5, 0.0, 0);
    }
}
