//! Multi-level-cell phase-change memory simulator.
//!
//! This crate is the device/array substrate of the VCC reproduction: a
//! sparse, lazily materialized PCM module with Gray-coded MLC (or SLC)
//! cells, Table-I programming energies, normally distributed per-cell
//! endurance, wear-induced stuck-at faults, and optional pre-generated
//! fault maps for the paper's fixed-incidence "snapshot" experiments.
//! Writes go through any [`coset::Encoder`], so the same memory model
//! serves unencoded writeback, DBI/FNW, Flipcy, RCC and VCC.
//!
//! # The packed row layout and the word-parallel commit
//!
//! Each materialized [`Row`] keeps the state the write hot path touches
//! packed per word, aligned with the stored bits (LSB-first cell order,
//! [`coset::symbol::CellKind::bits_per_cell`] bits per cell): the stored
//! data and auxiliary bits, and stuck-cell mask/value bit fields in which a
//! stuck cell always covers all of its bits. Only wear counters and
//! endurance limits remain per-cell arrays, because every cell carries an
//! individual sampled limit.
//!
//! Committing a word ([`Row::commit_word`], driven by
//! [`PcmMemory::commit_line`] for whole cache lines) is SWAR-style
//! word-parallel: transition classes are derived for all cells at once with
//! XOR/shift/popcount over the packed words, Table-I energy is charged as
//! per-class population counts times the class constants
//! ([`energy::TransitionCosts`]), stuck cells are masked in bulk, and
//! per-cell work (wear, death, freezing) happens only for the cells a write
//! actually programs. The invariants this relies on are:
//!
//! * the energy table has the Table-I class structure (zero diagonal, one
//!   constant per [`energy::TransitionClass`]) — asserted at construction;
//! * class energies are integer picojoules, so count × constant
//!   accumulation is bit-identical to the per-cell `f64` sum;
//! * stuck masks cover whole cells, so per-bit masking is exact at cell
//!   granularity;
//! * a cell that exceeds its endurance limit completes its final
//!   programming and is then frozen at the value just written.
//!
//! The original per-cell loop survives as the *scalar oracle*
//! (`PcmMemory::write_line_scalar` / `PcmMemory::write_word_scalar`),
//! compiled only for this crate's own tests and under the `scalar-oracle`
//! cargo feature. The `commit_oracle` differential suite (and the
//! `commit_path` bench in the workspace bench harness, which enables the
//! feature) pin the two paths to bit-identical outcomes, statistics,
//! stored bits and stuck-state evolution.
//!
//! ```
//! use pcm::{PcmConfig, PcmMemory};
//! use coset::{Vcc, cost::WriteEnergy};
//!
//! let mut mem = PcmMemory::new(PcmConfig::scaled(1 << 20, 1e6));
//! let vcc = Vcc::paper_mlc(256);
//! let line = [0xDEAD_BEEF_u64; 8];
//! let outcome = mem.write_line(0x40, &line, &vcc, &WriteEnergy::mlc());
//! assert!(outcome.total().energy_pj >= 0.0);
//! assert_eq!(mem.read_line(0x40, &vcc), line);
//! ```
//!
//! # Invariants
//!
//! The word-parallel commit is pinned to the scalar oracle by
//! `tests/commit_oracle.rs`, and the SWAR modules here are statically
//! checked by the workspace linter (`cargo run -p detlint -- check`,
//! rules SWAR01/DET02). See `docs/INVARIANTS.md` at the workspace root
//! for the rule catalog and escape hatches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod endurance;
pub mod energy;
pub mod fault;
pub mod memory;
pub mod row;
pub mod stats;
pub mod wearlevel;

pub use config::PcmConfig;
pub use endurance::EnduranceModel;
pub use fault::FaultMap;
pub use memory::{LineWriteScratch, PcmMemory};
pub use row::Row;
pub use stats::{
    LatencyHistogram, LatencySummary, LineWriteOutcome, MemoryStats, WordWriteOutcome,
    LATENCY_BUCKETS,
};
pub use wearlevel::StartGap;
