//! Multi-level-cell phase-change memory simulator.
//!
//! This crate is the device/array substrate of the VCC reproduction: a
//! sparse, lazily materialized PCM module with Gray-coded MLC (or SLC)
//! cells, Table-I programming energies, normally distributed per-cell
//! endurance, wear-induced stuck-at faults, and optional pre-generated
//! fault maps for the paper's fixed-incidence "snapshot" experiments.
//! Writes go through any [`coset::Encoder`], so the same memory model
//! serves unencoded writeback, DBI/FNW, Flipcy, RCC and VCC.
//!
//! ```
//! use pcm::{PcmConfig, PcmMemory};
//! use coset::{Vcc, cost::WriteEnergy};
//!
//! let mut mem = PcmMemory::new(PcmConfig::scaled(1 << 20, 1e6));
//! let vcc = Vcc::paper_mlc(256);
//! let line = [0xDEAD_BEEF_u64; 8];
//! let outcome = mem.write_line(0x40, &line, &vcc, &WriteEnergy::mlc());
//! assert!(outcome.total().energy_pj >= 0.0);
//! assert_eq!(mem.read_line(0x40, &vcc), line);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod endurance;
pub mod energy;
pub mod fault;
pub mod memory;
pub mod row;
pub mod stats;
pub mod wearlevel;

pub use config::PcmConfig;
pub use endurance::EnduranceModel;
pub use fault::FaultMap;
pub use memory::{LineWriteScratch, PcmMemory};
pub use row::Row;
pub use stats::{LineWriteOutcome, MemoryStats, WordWriteOutcome};
pub use wearlevel::StartGap;
