//! Device-level write-energy model (the paper's Table I).
//!
//! The numbers are calibrated to the prototype MLC PCM devices cited by the
//! paper (Bedeschi et al. JSSC'09, Wang et al. ICCD'11): programming a cell
//! into an intermediate Gray level (new right digit `1`) requires a full
//! SET + RESET preamble followed by program-and-verify and costs roughly an
//! order of magnitude more energy than driving it to one of the extreme
//! levels. Re-writing the same symbol is skipped by differential write and
//! costs nothing.
//!
//! The actual transition matrix lives in [`coset::cost::TransitionEnergy`]
//! so the encoders can optimize against it; this module re-exports the
//! calibrated constants, provides the [`table_i`] constructor used by the
//! simulator, and renders the table in the paper's format for reports.

use coset::cost::TransitionEnergy;
pub use coset::cost::{
    MLC_HIGH_TRANSITION_PJ as HIGH_TRANSITION_PJ, MLC_LOW_TRANSITION_PJ as LOW_TRANSITION_PJ,
    SLC_TRANSITION_PJ,
};
use coset::symbol::CellKind;

/// The Table-I MLC transition-energy model.
pub fn table_i() -> TransitionEnergy {
    TransitionEnergy::mlc_table_i()
}

/// The symmetric SLC energy model.
pub fn slc_energy() -> TransitionEnergy {
    TransitionEnergy::slc_symmetric()
}

/// The energy model matching a cell kind.
pub fn for_cell_kind(kind: CellKind) -> TransitionEnergy {
    match kind {
        CellKind::Mlc => table_i(),
        CellKind::Slc => slc_energy(),
    }
}

/// Classification of a symbol transition, mirroring Table I's entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionClass {
    /// Old and new symbols are identical: skipped by differential write.
    NoChange,
    /// The new symbol sits at an extreme Gray level (right digit `0`).
    Low,
    /// The new symbol sits at an intermediate Gray level (right digit `1`).
    High,
}

/// Classifies an MLC transition per Table I.
pub fn classify_mlc(old_symbol: u8, new_symbol: u8) -> TransitionClass {
    if old_symbol == new_symbol {
        TransitionClass::NoChange
    } else if new_symbol & 1 == 1 {
        TransitionClass::High
    } else {
        TransitionClass::Low
    }
}

/// Renders Table I (old state rows × new state columns, values "-", "low",
/// "high") exactly as the paper lays it out, for reports and documentation.
pub fn render_table_i() -> String {
    let order = [0b00u8, 0b01, 0b11, 0b10];
    let mut out = String::from("        N(00)  N(01)  N(11)  N(10)\n");
    for old in order {
        out.push_str(&format!("O({:02b})", old));
        for new in order {
            let cell = match classify_mlc(old, new) {
                TransitionClass::NoChange => "-",
                TransitionClass::Low => "low",
                TransitionClass::High => "high",
            };
            out.push_str(&format!("{cell:>7}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_an_order_of_magnitude_apart() {
        let (high, low) = (HIGH_TRANSITION_PJ, LOW_TRANSITION_PJ);
        assert!(high / low >= 8.0);
        assert!(low > 0.0);
        assert_eq!(SLC_TRANSITION_PJ, low);
    }

    #[test]
    fn classification_matches_paper_table() {
        use TransitionClass::*;
        // Row O(00) of Table I: -, high, high, low.
        assert_eq!(classify_mlc(0b00, 0b00), NoChange);
        assert_eq!(classify_mlc(0b00, 0b01), High);
        assert_eq!(classify_mlc(0b00, 0b11), High);
        assert_eq!(classify_mlc(0b00, 0b10), Low);
        // Row O(10): low, high, high, -.
        assert_eq!(classify_mlc(0b10, 0b00), Low);
        assert_eq!(classify_mlc(0b10, 0b01), High);
        assert_eq!(classify_mlc(0b10, 0b11), High);
        assert_eq!(classify_mlc(0b10, 0b10), NoChange);
    }

    #[test]
    fn table_matches_classification() {
        let t = table_i();
        for old in 0..4u8 {
            for new in 0..4u8 {
                let expect = match classify_mlc(old, new) {
                    TransitionClass::NoChange => 0.0,
                    TransitionClass::Low => LOW_TRANSITION_PJ,
                    TransitionClass::High => HIGH_TRANSITION_PJ,
                };
                assert_eq!(t.energy(old, new), expect);
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table_i();
        for row in ["O(00)", "O(01)", "O(11)", "O(10)"] {
            assert!(s.contains(row), "missing {row} in:\n{s}");
        }
        assert_eq!(s.matches("high").count(), 6);
        assert_eq!(s.matches("low").count(), 6);
    }

    #[test]
    fn for_cell_kind_selects_table() {
        assert_eq!(for_cell_kind(CellKind::Mlc), table_i());
        assert_eq!(for_cell_kind(CellKind::Slc), slc_energy());
    }
}
