//! Device-level write-energy model (the paper's Table I).
//!
//! The numbers are calibrated to the prototype MLC PCM devices cited by the
//! paper (Bedeschi et al. JSSC'09, Wang et al. ICCD'11): programming a cell
//! into an intermediate Gray level (new right digit `1`) requires a full
//! SET + RESET preamble followed by program-and-verify and costs roughly an
//! order of magnitude more energy than driving it to one of the extreme
//! levels. Re-writing the same symbol is skipped by differential write and
//! costs nothing.
//!
//! The actual transition matrix lives in [`coset::cost::TransitionEnergy`]
//! so the encoders can optimize against it; this module re-exports the
//! calibrated constants, provides the [`table_i`] constructor used by the
//! simulator, and renders the table in the paper's format for reports.

use coset::cost::TransitionEnergy;
pub use coset::cost::{
    MLC_HIGH_TRANSITION_PJ as HIGH_TRANSITION_PJ, MLC_LOW_TRANSITION_PJ as LOW_TRANSITION_PJ,
    SLC_TRANSITION_PJ,
};
use coset::symbol::CellKind;

/// The Table-I MLC transition-energy model.
pub fn table_i() -> TransitionEnergy {
    TransitionEnergy::mlc_table_i()
}

/// The symmetric SLC energy model.
pub fn slc_energy() -> TransitionEnergy {
    TransitionEnergy::slc_symmetric()
}

/// The energy model matching a cell kind.
pub fn for_cell_kind(kind: CellKind) -> TransitionEnergy {
    match kind {
        CellKind::Mlc => table_i(),
        CellKind::Slc => slc_energy(),
    }
}

/// Classification of a symbol transition, mirroring Table I's entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionClass {
    /// Old and new symbols are identical: skipped by differential write.
    NoChange,
    /// The new symbol sits at an extreme Gray level (right digit `0`).
    Low,
    /// The new symbol sits at an intermediate Gray level (right digit `1`).
    High,
}

/// Classifies an MLC transition per Table I.
pub fn classify_mlc(old_symbol: u8, new_symbol: u8) -> TransitionClass {
    if old_symbol == new_symbol {
        TransitionClass::NoChange
    } else if new_symbol & 1 == 1 {
        TransitionClass::High
    } else {
        TransitionClass::Low
    }
}

/// Per-class programming costs for the word-parallel (SWAR) commit path.
///
/// Both energy tables the simulator can instantiate — Table I for MLC and
/// the symmetric SLC model — are fully described by a *transition class*
/// ([`TransitionClass`]): rewrites are free, and every programmed cell
/// costs either the low or the high constant. The SWAR commit classifies
/// all cells of a word at once with bit tricks and multiplies the per-class
/// population counts by these constants, instead of performing a
/// `TransitionEnergy::energy` table lookup per cell.
///
/// `wear_low`/`wear_high` are the wear units of each class under
/// energy-weighted wear (`energy / LOW_TRANSITION_PJ`, rounded, at least
/// one); with plain event-counted wear both are 1. All four energy values
/// are integer picojoules, so class-count × constant accumulation is exact
/// in `f64` and bit-identical to the scalar per-cell sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionCosts {
    /// Energy of a low-class programming event, in pJ.
    pub low_pj: f64,
    /// Energy of a high-class programming event, in pJ (unused for SLC,
    /// where every flip is low-class).
    pub high_pj: f64,
    /// Wear units charged per low-class programming event.
    pub wear_low: u64,
    /// Wear units charged per high-class programming event.
    pub wear_high: u64,
    /// Whether the cells are MLC (two bits per cell, high class exists).
    pub is_mlc: bool,
}

impl TransitionCosts {
    /// Derives the per-class costs for a cell kind and wear policy.
    pub fn new(kind: CellKind, energy_weighted_wear: bool) -> Self {
        let (low_pj, high_pj, is_mlc) = match kind {
            CellKind::Mlc => (LOW_TRANSITION_PJ, HIGH_TRANSITION_PJ, true),
            CellKind::Slc => (SLC_TRANSITION_PJ, SLC_TRANSITION_PJ, false),
        };
        let wear_of = |e: f64| {
            if energy_weighted_wear {
                ((e / LOW_TRANSITION_PJ).round() as u64).max(1)
            } else {
                1
            }
        };
        TransitionCosts {
            low_pj,
            high_pj,
            wear_low: wear_of(low_pj),
            wear_high: wear_of(high_pj),
            is_mlc,
        }
    }

    /// Checks that a transition table has exactly the class structure these
    /// costs assume: zero diagonal, and every off-diagonal entry equal to
    /// the class constant ([`classify_mlc`] for MLC, `low_pj` for SLC).
    /// The memory constructor asserts this, pinning the SWAR commit path to
    /// tables it can reproduce bit-exactly.
    pub fn matches(&self, energies: &TransitionEnergy) -> bool {
        let symbols: &[u8] = if self.is_mlc { &[0, 1, 2, 3] } else { &[0, 1] };
        symbols.iter().all(|&old| {
            symbols.iter().all(|&new| {
                let expect = if old == new {
                    0.0
                } else if self.is_mlc && new & 1 == 1 {
                    self.high_pj
                } else {
                    self.low_pj
                };
                energies.energy(old, new) == expect
            })
        })
    }
}

/// Renders Table I (old state rows × new state columns, values "-", "low",
/// "high") exactly as the paper lays it out, for reports and documentation.
pub fn render_table_i() -> String {
    let order = [0b00u8, 0b01, 0b11, 0b10];
    let mut out = String::from("        N(00)  N(01)  N(11)  N(10)\n");
    for old in order {
        out.push_str(&format!("O({:02b})", old));
        for new in order {
            let cell = match classify_mlc(old, new) {
                TransitionClass::NoChange => "-",
                TransitionClass::Low => "low",
                TransitionClass::High => "high",
            };
            out.push_str(&format!("{cell:>7}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_an_order_of_magnitude_apart() {
        let (high, low) = (HIGH_TRANSITION_PJ, LOW_TRANSITION_PJ);
        assert!(high / low >= 8.0);
        assert!(low > 0.0);
        assert_eq!(SLC_TRANSITION_PJ, low);
    }

    #[test]
    fn classification_matches_paper_table() {
        use TransitionClass::*;
        // Row O(00) of Table I: -, high, high, low.
        assert_eq!(classify_mlc(0b00, 0b00), NoChange);
        assert_eq!(classify_mlc(0b00, 0b01), High);
        assert_eq!(classify_mlc(0b00, 0b11), High);
        assert_eq!(classify_mlc(0b00, 0b10), Low);
        // Row O(10): low, high, high, -.
        assert_eq!(classify_mlc(0b10, 0b00), Low);
        assert_eq!(classify_mlc(0b10, 0b01), High);
        assert_eq!(classify_mlc(0b10, 0b11), High);
        assert_eq!(classify_mlc(0b10, 0b10), NoChange);
    }

    #[test]
    fn table_matches_classification() {
        let t = table_i();
        for old in 0..4u8 {
            for new in 0..4u8 {
                let expect = match classify_mlc(old, new) {
                    TransitionClass::NoChange => 0.0,
                    TransitionClass::Low => LOW_TRANSITION_PJ,
                    TransitionClass::High => HIGH_TRANSITION_PJ,
                };
                assert_eq!(t.energy(old, new), expect);
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table_i();
        for row in ["O(00)", "O(01)", "O(11)", "O(10)"] {
            assert!(s.contains(row), "missing {row} in:\n{s}");
        }
        assert_eq!(s.matches("high").count(), 6);
        assert_eq!(s.matches("low").count(), 6);
    }

    #[test]
    fn transition_costs_match_their_tables() {
        for weighted in [false, true] {
            let mlc = TransitionCosts::new(CellKind::Mlc, weighted);
            assert!(mlc.matches(&table_i()));
            assert!(!mlc.matches(&slc_energy()));
            let slc = TransitionCosts::new(CellKind::Slc, weighted);
            assert!(slc.matches(&slc_energy()));
        }
    }

    #[test]
    fn transition_cost_wear_units() {
        let flat = TransitionCosts::new(CellKind::Mlc, false);
        assert_eq!((flat.wear_low, flat.wear_high), (1, 1));
        let weighted = TransitionCosts::new(CellKind::Mlc, true);
        assert_eq!(weighted.wear_low, 1);
        assert_eq!(
            weighted.wear_high,
            (HIGH_TRANSITION_PJ / LOW_TRANSITION_PJ).round() as u64
        );
        let slc = TransitionCosts::new(CellKind::Slc, true);
        assert_eq!((slc.wear_low, slc.wear_high), (1, 1));
        assert!(!slc.is_mlc);
    }

    #[test]
    fn for_cell_kind_selects_table() {
        assert_eq!(for_cell_kind(CellKind::Mlc), table_i());
        assert_eq!(for_cell_kind(CellKind::Slc), slc_energy());
    }
}
