//! Per-row cell state: stored values, wear counters, endurance limits and
//! stuck-at status.

use coset::block::Block;
use coset::symbol::CellKind;
use coset::StuckBits;

use crate::config::PcmConfig;
use crate::endurance::EnduranceModel;

/// The mutable state of one memory row (cache line) and its cells.
///
/// Cells are indexed row-locally: word `w` owns data cells
/// `[w · cpw_total, w · cpw_total + cells_per_word)` followed by its
/// auxiliary cells, where `cpw_total = cells_per_word + aux_cells_per_word`.
#[derive(Debug, Clone)]
pub struct Row {
    /// Stored data words (one entry per 64-bit word of the row).
    data: Vec<u64>,
    /// Stored auxiliary bits per word.
    aux: Vec<u64>,
    /// Programming events endured by each cell.
    wear: Vec<u64>,
    /// Endurance limit of each cell.
    limit: Vec<u64>,
    /// Whether each cell is stuck.
    stuck: Vec<bool>,
    /// The symbol a stuck cell is frozen at (valid only where `stuck`).
    stuck_value: Vec<u8>,
    cells_per_word: usize,
    aux_cells_per_word: usize,
    bits_per_cell: usize,
}

impl Row {
    /// Materializes a fresh row: data cells take `initial` contents, aux
    /// cells start at zero, wear starts at zero, and every cell's endurance
    /// limit is sampled from the endurance model.
    pub fn new(
        config: &PcmConfig,
        endurance: &EnduranceModel,
        row_addr: u64,
        initial: &[u64],
    ) -> Self {
        let words = config.words_per_row();
        assert_eq!(initial.len(), words, "initial contents word count");
        let cpw = config.cells_per_word();
        let acw = config.aux_cells_per_word();
        let total_cells = (cpw + acw) * words;
        let mut limit = Vec::with_capacity(total_cells);
        for c in 0..total_cells {
            limit.push(endurance.cell_limit(row_addr, c));
        }
        Row {
            data: initial.to_vec(),
            aux: vec![0u64; words],
            wear: vec![0u64; total_cells],
            limit,
            stuck: vec![false; total_cells],
            stuck_value: vec![0u8; total_cells],
            cells_per_word: cpw,
            aux_cells_per_word: acw,
            bits_per_cell: config.cell_kind.bits_per_cell(),
        }
    }

    /// Number of words in the row.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Total cells (data + aux) per word.
    pub fn cells_per_word_total(&self) -> usize {
        self.cells_per_word + self.aux_cells_per_word
    }

    /// Row-local index of the first (data) cell of word `w`.
    pub fn first_cell_of_word(&self, w: usize) -> usize {
        w * self.cells_per_word_total()
    }

    /// Row-local index of the first auxiliary cell of word `w`.
    pub fn first_aux_cell_of_word(&self, w: usize) -> usize {
        self.first_cell_of_word(w) + self.cells_per_word
    }

    /// Currently stored data word `w`.
    pub fn data_word(&self, w: usize) -> u64 {
        self.data[w]
    }

    /// Currently stored auxiliary bits of word `w`.
    pub fn aux_word(&self, w: usize) -> u64 {
        self.aux[w]
    }

    /// The stored data of word `w` as a [`Block`].
    pub fn data_block(&self, w: usize, word_bits: usize) -> Block {
        Block::from_u64(self.data[w], word_bits)
    }

    /// Overwrites the stored data and aux of word `w` (used by the write
    /// path after stuck-cell masking has been applied).
    pub fn store_word(&mut self, w: usize, data: u64, aux: u64) {
        self.data[w] = data;
        self.aux[w] = aux;
    }

    /// Whether a cell is stuck.
    pub fn is_stuck(&self, cell: usize) -> bool {
        self.stuck[cell]
    }

    /// The symbol a stuck cell is frozen at.
    pub fn stuck_symbol(&self, cell: usize) -> u8 {
        self.stuck_value[cell]
    }

    /// Marks a cell stuck at `symbol`.
    pub fn stick_cell(&mut self, cell: usize, symbol: u8) {
        self.stuck[cell] = true;
        self.stuck_value[cell] = symbol;
    }

    /// Wear endured by a cell.
    pub fn wear(&self, cell: usize) -> u64 {
        self.wear[cell]
    }

    /// Endurance limit of a cell.
    pub fn limit(&self, cell: usize) -> u64 {
        self.limit[cell]
    }

    /// Adds `amount` programming events of wear to a cell. Returns `true`
    /// if this pushed the cell past its endurance limit (the caller then
    /// marks it stuck at its final value).
    pub fn add_wear(&mut self, cell: usize, amount: u64) -> bool {
        self.wear[cell] = self.wear[cell].saturating_add(amount);
        self.wear[cell] >= self.limit[cell] && !self.stuck[cell]
    }

    /// Number of stuck cells in the whole row.
    pub fn stuck_cells(&self) -> usize {
        self.stuck.iter().filter(|s| **s).count()
    }

    /// Builds the [`StuckBits`] view (wear-induced faults only) for the data
    /// portion of word `w`.
    pub fn stuck_bits_for_data(&self, w: usize, word_bits: usize) -> StuckBits {
        let mut out = StuckBits::none(word_bits);
        let base = self.first_cell_of_word(w);
        for c in 0..self.cells_per_word {
            if self.stuck[base + c] {
                out.stick_cell(c, self.bits_per_cell, self.stuck_value[base + c] as u64);
            }
        }
        out
    }

    /// Builds the stuck mask/value pair for the auxiliary cells of word `w`
    /// as packed bit fields.
    pub fn stuck_bits_for_aux(&self, w: usize) -> (u64, u64) {
        let base = self.first_aux_cell_of_word(w);
        let mut mask = 0u64;
        let mut value = 0u64;
        for c in 0..self.aux_cells_per_word {
            if self.stuck[base + c] {
                let shift = c * self.bits_per_cell;
                let cell_mask = (1u64 << self.bits_per_cell) - 1;
                mask |= cell_mask << shift;
                value |= (self.stuck_value[base + c] as u64) << shift;
            }
        }
        (mask, value)
    }

    /// Cell kind width in bits.
    pub fn bits_per_cell(&self) -> usize {
        self.bits_per_cell
    }

    /// Number of data cells per word.
    pub fn data_cells_per_word(&self) -> usize {
        self.cells_per_word
    }

    /// Number of auxiliary cells per word.
    pub fn aux_cells_per_word(&self) -> usize {
        self.aux_cells_per_word
    }
}

/// Splits a stored word into per-cell symbols (LSB-first cell order).
pub fn word_symbols(word: u64, cells: usize, kind: CellKind) -> Vec<u8> {
    let bpc = kind.bits_per_cell();
    let mask = (1u64 << bpc) - 1;
    (0..cells)
        .map(|c| ((word >> (c * bpc)) & mask) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PcmConfig {
        PcmConfig::scaled(64 * 1024, 1e4)
    }

    #[test]
    fn geometry_and_initial_state() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let init = vec![0xABCDu64; 8];
        let row = Row::new(&cfg, &end, 0, &init);
        assert_eq!(row.words(), 8);
        assert_eq!(row.cells_per_word_total(), 36);
        assert_eq!(row.first_cell_of_word(1), 36);
        assert_eq!(row.first_aux_cell_of_word(0), 32);
        assert_eq!(row.data_word(3), 0xABCD);
        assert_eq!(row.aux_word(3), 0);
        assert_eq!(row.stuck_cells(), 0);
        assert_eq!(row.data_cells_per_word(), 32);
        assert_eq!(row.aux_cells_per_word(), 4);
        assert_eq!(row.bits_per_cell(), 2);
        assert!(row.limit(0) > 0);
    }

    #[test]
    fn store_and_read_back() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 1, &[0u64; 8]);
        row.store_word(2, 0xDEADBEEF, 0x3F);
        assert_eq!(row.data_word(2), 0xDEADBEEF);
        assert_eq!(row.aux_word(2), 0x3F);
        assert_eq!(row.data_block(2, 64).as_u64(), 0xDEADBEEF);
    }

    #[test]
    fn wear_accumulates_and_triggers_failure() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 2, &[0u64; 8]);
        let limit = row.limit(5);
        let mut failed = false;
        for _ in 0..limit {
            failed = row.add_wear(5, 1);
            if failed {
                break;
            }
        }
        assert!(failed, "cell should fail at its limit");
        assert_eq!(row.wear(5), limit);
        row.stick_cell(5, 0b10);
        assert!(row.is_stuck(5));
        assert_eq!(row.stuck_symbol(5), 0b10);
        // Further wear does not re-trigger the failure edge.
        assert!(!row.add_wear(5, 1));
    }

    #[test]
    fn stuck_bits_views() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 3, &[0u64; 8]);
        // Stick data cell 4 of word 1 and aux cell 0 of word 1.
        let data_cell = row.first_cell_of_word(1) + 4;
        let aux_cell = row.first_aux_cell_of_word(1);
        row.stick_cell(data_cell, 0b11);
        row.stick_cell(aux_cell, 0b01);
        let stuck = row.stuck_bits_for_data(1, 64);
        assert!(stuck.is_stuck(8));
        assert!(stuck.is_stuck(9));
        assert_eq!(stuck.value_bits(8, 2), 0b11);
        assert_eq!(stuck.stuck_count(), 2);
        let (mask, value) = row.stuck_bits_for_aux(1);
        assert_eq!(mask, 0b11);
        assert_eq!(value, 0b01);
        // Word 0 is unaffected.
        assert_eq!(row.stuck_bits_for_data(0, 64).stuck_count(), 0);
        assert_eq!(row.stuck_bits_for_aux(0), (0, 0));
    }

    #[test]
    fn word_symbols_extraction() {
        let syms = word_symbols(0b11_01_00_10, 4, CellKind::Mlc);
        assert_eq!(syms, vec![0b10, 0b00, 0b01, 0b11]);
        let bits = word_symbols(0b1011, 4, CellKind::Slc);
        assert_eq!(bits, vec![1, 1, 0, 1]);
    }
}
