//! Per-row cell state: stored values, wear counters, endurance limits and
//! stuck-at status — plus the word-parallel (SWAR) commit primitive.
//!
//! # Packed layout
//!
//! All per-cell state that the write hot path consults is kept packed per
//! word, aligned with the stored bits themselves:
//!
//! * `data[w]` / `aux[w]` — the stored bits of word `w`'s data and
//!   auxiliary regions (LSB-first cell order, `bits_per_cell` bits each);
//! * `stuck_data_mask[w]` / `stuck_data_value[w]` — a bitmask over the same
//!   bit positions marking stuck cells (both bits of a stuck MLC cell are
//!   set) and the values they are frozen at;
//! * `stuck_aux_mask[w]` / `stuck_aux_value[w]` — the same for the
//!   auxiliary region.
//!
//! Only wear counters and endurance limits remain per-cell arrays (each
//! cell has an individual limit), and [`Row::commit_word`] touches them
//! only for the cells a write actually programs.

use coset::block::Block;
use coset::symbol::CellKind;
use coset::StuckBits;

use crate::config::PcmConfig;
use crate::endurance::EnduranceModel;
use crate::energy::TransitionCosts;
use crate::stats::WordWriteOutcome;

/// Bit mask selecting the marker (right-digit) bit of every MLC cell.
const MLC_RIGHT_DIGITS: u64 = 0x5555_5555_5555_5555;

/// Mask covering the low `bits` bits of a word.
#[inline]
fn low_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The mutable state of one memory row (cache line) and its cells.
///
/// Cells are indexed row-locally: word `w` owns data cells
/// `[w · cpw_total, w · cpw_total + cells_per_word)` followed by its
/// auxiliary cells, where `cpw_total = cells_per_word + aux_cells_per_word`.
#[derive(Debug, Clone)]
pub struct Row {
    /// Stored data words (one entry per 64-bit word of the row).
    data: Vec<u64>,
    /// Stored auxiliary bits per word.
    aux: Vec<u64>,
    /// Packed stuck mask over the data bits of each word.
    stuck_data_mask: Vec<u64>,
    /// Frozen values at the stuck data bit positions of each word.
    stuck_data_value: Vec<u64>,
    /// Packed stuck mask over the auxiliary bits of each word.
    stuck_aux_mask: Vec<u64>,
    /// Frozen values at the stuck auxiliary bit positions of each word.
    stuck_aux_value: Vec<u64>,
    /// Programming events endured by each cell.
    wear: Vec<u64>,
    /// Endurance limit of each cell.
    limit: Vec<u64>,
    cells_per_word: usize,
    aux_cells_per_word: usize,
    bits_per_cell: usize,
}

impl Row {
    /// Materializes a fresh row: data cells take `initial` contents, aux
    /// cells start at zero, wear starts at zero, and every cell's endurance
    /// limit is sampled from the endurance model.
    pub fn new(
        config: &PcmConfig,
        endurance: &EnduranceModel,
        row_addr: u64,
        initial: &[u64],
    ) -> Self {
        let words = config.words_per_row();
        assert_eq!(initial.len(), words, "initial contents word count");
        let cpw = config.cells_per_word();
        let acw = config.aux_cells_per_word();
        let total_cells = (cpw + acw) * words;
        let mut limit = Vec::with_capacity(total_cells);
        for c in 0..total_cells {
            limit.push(endurance.cell_limit(row_addr, c));
        }
        Row {
            data: initial.to_vec(),
            aux: vec![0u64; words],
            stuck_data_mask: vec![0u64; words],
            stuck_data_value: vec![0u64; words],
            stuck_aux_mask: vec![0u64; words],
            stuck_aux_value: vec![0u64; words],
            wear: vec![0u64; total_cells],
            limit,
            cells_per_word: cpw,
            aux_cells_per_word: acw,
            bits_per_cell: config.cell_kind.bits_per_cell(),
        }
    }

    /// Number of words in the row.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Total cells (data + aux) per word.
    pub fn cells_per_word_total(&self) -> usize {
        self.cells_per_word + self.aux_cells_per_word
    }

    /// Row-local index of the first (data) cell of word `w`.
    pub fn first_cell_of_word(&self, w: usize) -> usize {
        w * self.cells_per_word_total()
    }

    /// Row-local index of the first auxiliary cell of word `w`.
    pub fn first_aux_cell_of_word(&self, w: usize) -> usize {
        self.first_cell_of_word(w) + self.cells_per_word
    }

    /// Locates a row-local cell: `(word, region is aux, bit shift within
    /// the region)`.
    #[inline]
    fn locate(&self, cell: usize) -> (usize, bool, usize) {
        let total = self.cells_per_word_total();
        let w = cell / total;
        let offset = cell % total;
        if offset < self.cells_per_word {
            (w, false, offset * self.bits_per_cell)
        } else {
            (w, true, (offset - self.cells_per_word) * self.bits_per_cell)
        }
    }

    /// Currently stored data word `w`.
    pub fn data_word(&self, w: usize) -> u64 {
        self.data[w]
    }

    /// Currently stored auxiliary bits of word `w`.
    pub fn aux_word(&self, w: usize) -> u64 {
        self.aux[w]
    }

    /// The stored data of word `w` as a [`Block`].
    pub fn data_block(&self, w: usize, word_bits: usize) -> Block {
        Block::from_u64(self.data[w], word_bits)
    }

    /// Overwrites the stored data and aux of word `w` (used by the write
    /// path after stuck-cell masking has been applied).
    pub fn store_word(&mut self, w: usize, data: u64, aux: u64) {
        self.data[w] = data;
        self.aux[w] = aux;
    }

    /// Whether a cell is stuck.
    pub fn is_stuck(&self, cell: usize) -> bool {
        let (w, aux, shift) = self.locate(cell);
        let mask = if aux {
            self.stuck_aux_mask[w]
        } else {
            self.stuck_data_mask[w]
        };
        (mask >> shift) & low_mask(self.bits_per_cell) != 0
    }

    /// The symbol a stuck cell is frozen at.
    pub fn stuck_symbol(&self, cell: usize) -> u8 {
        let (w, aux, shift) = self.locate(cell);
        let value = if aux {
            self.stuck_aux_value[w]
        } else {
            self.stuck_data_value[w]
        };
        ((value >> shift) & low_mask(self.bits_per_cell)) as u8
    }

    /// The symbol currently stored in a cell.
    pub fn current_symbol(&self, cell: usize) -> u8 {
        let (w, aux, shift) = self.locate(cell);
        let stored = if aux { self.aux[w] } else { self.data[w] };
        ((stored >> shift) & low_mask(self.bits_per_cell)) as u8
    }

    /// Marks a cell stuck at `symbol`.
    pub fn stick_cell(&mut self, cell: usize, symbol: u8) {
        let (w, aux, shift) = self.locate(cell);
        let cell_mask = low_mask(self.bits_per_cell) << shift;
        let value_bits = ((symbol as u64) << shift) & cell_mask;
        let (mask, value) = if aux {
            (&mut self.stuck_aux_mask[w], &mut self.stuck_aux_value[w])
        } else {
            (&mut self.stuck_data_mask[w], &mut self.stuck_data_value[w])
        };
        *mask |= cell_mask;
        *value = (*value & !cell_mask) | value_bits;
    }

    /// Forces the stored bits of every stuck cell to its frozen value, so
    /// reads observe the fault (used after applying a pre-generated fault
    /// map to a freshly materialized row).
    pub fn freeze_stuck_values(&mut self) {
        for w in 0..self.data.len() {
            self.data[w] = (self.data[w] & !self.stuck_data_mask[w])
                | (self.stuck_data_value[w] & self.stuck_data_mask[w]);
            self.aux[w] = (self.aux[w] & !self.stuck_aux_mask[w])
                | (self.stuck_aux_value[w] & self.stuck_aux_mask[w]);
        }
    }

    /// Kills the whole row: every cell (data and auxiliary) freezes at its
    /// currently stored symbol. Subsequent writes cannot change any bit, so
    /// freshly written data survives only where it happens to match — the
    /// device-level model of outright row death used by fault injection.
    pub fn kill(&mut self) {
        let data_region = low_mask(self.cells_per_word * self.bits_per_cell);
        let aux_region = low_mask(self.aux_cells_per_word * self.bits_per_cell);
        for w in 0..self.data.len() {
            self.stuck_data_mask[w] = data_region;
            self.stuck_data_value[w] = self.data[w] & data_region;
            self.stuck_aux_mask[w] = aux_region;
            self.stuck_aux_value[w] = self.aux[w] & aux_region;
        }
    }

    /// Wear endured by a cell.
    pub fn wear(&self, cell: usize) -> u64 {
        self.wear[cell]
    }

    /// Endurance limit of a cell.
    pub fn limit(&self, cell: usize) -> u64 {
        self.limit[cell]
    }

    /// Adds `amount` programming events of wear to a cell. Returns `true`
    /// if this pushed the cell past its endurance limit (the caller then
    /// marks it stuck at its final value).
    pub fn add_wear(&mut self, cell: usize, amount: u64) -> bool {
        self.wear[cell] = self.wear[cell].saturating_add(amount);
        self.wear[cell] >= self.limit[cell] && !self.is_stuck(cell)
    }

    /// Number of stuck cells in the whole row.
    pub fn stuck_cells(&self) -> usize {
        // Stuck masks always cover whole cells, so the bit count is an
        // exact multiple of the cell width.
        let bits: u32 = self
            .stuck_data_mask
            .iter()
            .chain(&self.stuck_aux_mask)
            .map(|m| m.count_ones())
            .sum();
        bits as usize / self.bits_per_cell
    }

    /// Builds the [`StuckBits`] view of every stuck cell — fault-map-applied
    /// and wear-induced alike — for the data portion of word `w`.
    pub fn stuck_bits_for_data(&self, w: usize, word_bits: usize) -> StuckBits {
        StuckBits::new(
            Block::from_u64(self.stuck_data_mask[w], word_bits),
            Block::from_u64(self.stuck_data_value[w], word_bits),
        )
    }

    /// Builds the stuck mask/value pair for the auxiliary cells of word `w`
    /// as packed bit fields.
    pub fn stuck_bits_for_aux(&self, w: usize) -> (u64, u64) {
        (self.stuck_aux_mask[w], self.stuck_aux_value[w])
    }

    /// Cell kind width in bits.
    pub fn bits_per_cell(&self) -> usize {
        self.bits_per_cell
    }

    /// Number of data cells per word.
    pub fn data_cells_per_word(&self) -> usize {
        self.cells_per_word
    }

    /// Number of auxiliary cells per word.
    pub fn aux_cells_per_word(&self) -> usize {
        self.aux_cells_per_word
    }

    /// Programs one word (data region, then `aux_region_bits` worth of
    /// auxiliary cells) with the word-parallel commit: transition classes
    /// are derived for all cells at once from packed XOR/popcount operations
    /// and charged by per-class counts, stuck cells are masked in bulk, and
    /// only the cells actually programmed pay per-cell wear accounting.
    ///
    /// Equivalent to the per-cell scalar loop (`PcmMemory` retains that as
    /// the `scalar-oracle` reference): identical stored bits, outcome
    /// counters, wear and stuck-state evolution, with `energy_pj` exact to
    /// the bit because Table-I class energies are integer picojoules.
    pub fn commit_word(
        &mut self,
        w: usize,
        desired_data: u64,
        desired_aux: u64,
        aux_region_bits: usize,
        costs: &TransitionCosts,
        outcome: &mut WordWriteOutcome,
    ) {
        let data_region_bits = self.cells_per_word * self.bits_per_cell;
        self.commit_region(w, false, data_region_bits, desired_data, costs, outcome);
        self.commit_region(w, true, aux_region_bits, desired_aux, costs, outcome);
    }

    /// SWAR-commits one region (data or auxiliary cells) of word `w`.
    fn commit_region(
        &mut self,
        w: usize,
        aux: bool,
        region_bits: usize,
        desired: u64,
        costs: &TransitionCosts,
        outcome: &mut WordWriteOutcome,
    ) {
        let bpc = self.bits_per_cell;
        let region = low_mask(region_bits);
        let (old, stuck_mask, stuck_value, base_cell) = if aux {
            (
                self.aux[w],
                self.stuck_aux_mask[w],
                self.stuck_aux_value[w],
                self.first_aux_cell_of_word(w),
            )
        } else {
            (
                self.data[w],
                self.stuck_data_mask[w],
                self.stuck_data_value[w],
                self.first_cell_of_word(w),
            )
        };
        let stuck = stuck_mask & region;
        // Fold per-bit flags onto one marker bit per cell (the right digit
        // for MLC; every bit is its own cell for SLC).
        let fold_cells = |bits: u64| -> u64 {
            if bpc == 2 {
                (bits | (bits >> 1)) & MLC_RIGHT_DIGITS
            } else {
                bits
            }
        };

        // Stuck-at-wrong cells: stuck and frozen at a value that differs
        // from what this write wants.
        let saw_cells = fold_cells((desired ^ stuck_value) & stuck);
        outcome.saw_cells += saw_cells.count_ones();

        // Programmed cells: changed and not stuck. Stuck masks cover whole
        // cells, so the per-bit mask is exact at cell granularity.
        let changed_bits = (old ^ desired) & region & !stuck;
        outcome.bit_flips += changed_bits.count_ones();
        let programmed = fold_cells(changed_bits);
        let programmed_count = programmed.count_ones();
        outcome.cells_programmed += programmed_count;

        // Transition classes by per-class population count: an MLC cell
        // programmed into a right-digit-1 symbol is high class, everything
        // else (including every SLC flip) is low class.
        let high_cells = if costs.is_mlc {
            (programmed & desired).count_ones()
        } else {
            0
        };
        let low_cells = programmed_count - high_cells;
        outcome.high_energy_programs += high_cells;
        outcome.energy_pj += high_cells as f64 * costs.high_pj + low_cells as f64 * costs.low_pj;

        // Stored bits: stuck cells keep their frozen value, everything else
        // in the region takes the new value, bits above the region are
        // untouched.
        let stored = (old & !region) | (((desired & !stuck) | (stuck_value & stuck)) & region);
        if aux {
            self.aux[w] = stored;
        } else {
            self.data[w] = stored;
        }

        // Wear accounting for the programmed cells only, in ascending cell
        // order (matching the scalar loop). A cell that exceeds its limit
        // still completes this final programming — it is frozen at the value
        // just written.
        let mut markers = programmed;
        while markers != 0 {
            let bit = markers.trailing_zeros() as usize;
            markers &= markers - 1;
            let cell_offset = bit / bpc;
            let cell = base_cell + cell_offset;
            let units = if costs.is_mlc && (desired >> bit) & 1 == 1 {
                costs.wear_high
            } else {
                costs.wear_low
            };
            self.wear[cell] = self.wear[cell].saturating_add(units);
            if self.wear[cell] >= self.limit[cell] {
                outcome.new_dead_cells += 1;
                let shift = cell_offset * bpc;
                let cell_mask = low_mask(bpc) << shift;
                let (mask, value) = if aux {
                    (&mut self.stuck_aux_mask[w], &mut self.stuck_aux_value[w])
                } else {
                    (&mut self.stuck_data_mask[w], &mut self.stuck_data_value[w])
                };
                *mask |= cell_mask;
                *value = (*value & !cell_mask) | (desired & cell_mask);
            }
        }
    }
}

/// Splits a stored word into per-cell symbols (LSB-first cell order).
pub fn word_symbols(word: u64, cells: usize, kind: CellKind) -> Vec<u8> {
    let bpc = kind.bits_per_cell();
    let mask = (1u64 << bpc) - 1;
    (0..cells)
        .map(|c| ((word >> (c * bpc)) & mask) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PcmConfig {
        PcmConfig::scaled(64 * 1024, 1e4)
    }

    #[test]
    fn geometry_and_initial_state() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let init = vec![0xABCDu64; 8];
        let row = Row::new(&cfg, &end, 0, &init);
        assert_eq!(row.words(), 8);
        assert_eq!(row.cells_per_word_total(), 36);
        assert_eq!(row.first_cell_of_word(1), 36);
        assert_eq!(row.first_aux_cell_of_word(0), 32);
        assert_eq!(row.data_word(3), 0xABCD);
        assert_eq!(row.aux_word(3), 0);
        assert_eq!(row.stuck_cells(), 0);
        assert_eq!(row.data_cells_per_word(), 32);
        assert_eq!(row.aux_cells_per_word(), 4);
        assert_eq!(row.bits_per_cell(), 2);
        assert!(row.limit(0) > 0);
    }

    #[test]
    fn store_and_read_back() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 1, &[0u64; 8]);
        row.store_word(2, 0xDEADBEEF, 0x3F);
        assert_eq!(row.data_word(2), 0xDEADBEEF);
        assert_eq!(row.aux_word(2), 0x3F);
        assert_eq!(row.data_block(2, 64).as_u64(), 0xDEADBEEF);
    }

    #[test]
    fn wear_accumulates_and_triggers_failure() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 2, &[0u64; 8]);
        let limit = row.limit(5);
        let mut failed = false;
        for _ in 0..limit {
            failed = row.add_wear(5, 1);
            if failed {
                break;
            }
        }
        assert!(failed, "cell should fail at its limit");
        assert_eq!(row.wear(5), limit);
        row.stick_cell(5, 0b10);
        assert!(row.is_stuck(5));
        assert_eq!(row.stuck_symbol(5), 0b10);
        // Further wear does not re-trigger the failure edge.
        assert!(!row.add_wear(5, 1));
    }

    #[test]
    fn stuck_bits_views() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 3, &[0u64; 8]);
        // Stick data cell 4 of word 1 and aux cell 0 of word 1.
        let data_cell = row.first_cell_of_word(1) + 4;
        let aux_cell = row.first_aux_cell_of_word(1);
        row.stick_cell(data_cell, 0b11);
        row.stick_cell(aux_cell, 0b01);
        let stuck = row.stuck_bits_for_data(1, 64);
        assert!(stuck.is_stuck(8));
        assert!(stuck.is_stuck(9));
        assert_eq!(stuck.value_bits(8, 2), 0b11);
        assert_eq!(stuck.stuck_count(), 2);
        let (mask, value) = row.stuck_bits_for_aux(1);
        assert_eq!(mask, 0b11);
        assert_eq!(value, 0b01);
        // Word 0 is unaffected.
        assert_eq!(row.stuck_bits_for_data(0, 64).stuck_count(), 0);
        assert_eq!(row.stuck_bits_for_aux(0), (0, 0));
        assert_eq!(row.stuck_cells(), 2);
    }

    #[test]
    fn freeze_stuck_values_forces_stored_bits() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 4, &[u64::MAX; 8]);
        row.stick_cell(0, 0b00); // data cell 0 of word 0
        let aux_cell = row.first_aux_cell_of_word(0);
        row.stick_cell(aux_cell, 0b10);
        row.freeze_stuck_values();
        assert_eq!(row.data_word(0) & 0b11, 0b00);
        assert_eq!(row.aux_word(0) & 0b11, 0b10);
        // Unstuck bits are untouched.
        assert_eq!(row.data_word(0) >> 2, u64::MAX >> 2);
        assert_eq!(row.data_word(1), u64::MAX);
    }

    #[test]
    fn commit_word_programs_classes_and_masks_stuck_cells() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 5, &[0u64; 8]);
        let costs = TransitionCosts::new(CellKind::Mlc, false);
        // Stick data cell 1 of word 0 at 0b11; write wants 0b00 there → SAW.
        row.stick_cell(1, 0b11);
        let mut outcome = WordWriteOutcome::default();
        // Cell 0: 00→10 (low class); cell 1: stuck; cell 2: 00→01 (high).
        let desired = 0b01_00_10u64;
        row.commit_word(0, desired, 0b0, 0, &costs, &mut outcome);
        assert_eq!(outcome.cells_programmed, 2);
        assert_eq!(outcome.high_energy_programs, 1);
        assert_eq!(outcome.saw_cells, 1);
        assert_eq!(outcome.bit_flips, 2);
        assert_eq!(
            outcome.energy_pj,
            crate::energy::LOW_TRANSITION_PJ + crate::energy::HIGH_TRANSITION_PJ
        );
        // Stored: stuck cell keeps 0b11, others take the new value.
        assert_eq!(row.data_word(0), 0b01_11_10);
        assert_eq!(row.wear(0), 1);
        assert_eq!(row.wear(1), 0, "stuck cell endures no wear");
        assert_eq!(row.wear(2), 1);
    }

    #[test]
    fn commit_word_kills_cells_at_their_limit_and_freezes_them() {
        let cfg = small_config();
        let end = EnduranceModel::new(4.0, 0.0, 0.0, 1);
        let mut row = Row::new(&cfg, &end, 6, &[0u64; 8]);
        let costs = TransitionCosts::new(CellKind::Mlc, false);
        let limit = row.limit(0);
        let mut deaths = 0;
        // Alternate cell 0 between symbols until it dies.
        for i in 0..2 * limit {
            let mut outcome = WordWriteOutcome::default();
            let desired = if i % 2 == 0 { 0b10 } else { 0b00 };
            row.commit_word(0, desired, 0, 0, &costs, &mut outcome);
            deaths += outcome.new_dead_cells;
            if row.is_stuck(0) {
                break;
            }
        }
        assert_eq!(deaths, 1, "the cell dies exactly once");
        assert!(row.is_stuck(0));
        assert_eq!(row.wear(0), limit);
        // Frozen at the value of its final (successful) programming.
        assert_eq!(row.stuck_symbol(0) as u64, row.data_word(0) & 0b11);
        // Further writes to the dead cell are SAW, not programming.
        let frozen = row.stuck_symbol(0);
        let mut outcome = WordWriteOutcome::default();
        row.commit_word(0, (frozen ^ 0b10) as u64, 0, 0, &costs, &mut outcome);
        assert_eq!(outcome.saw_cells, 1);
        assert_eq!(outcome.cells_programmed, 0);
    }

    #[test]
    fn commit_word_aux_region_is_bounded() {
        let cfg = small_config();
        let end = EnduranceModel::paper_default(cfg.endurance_mean, cfg.seed);
        let mut row = Row::new(&cfg, &end, 7, &[0u64; 8]);
        let costs = TransitionCosts::new(CellKind::Mlc, false);
        let mut outcome = WordWriteOutcome::default();
        // Only 4 aux bits (2 cells) in the region: bits above must not be
        // programmed even though desired_aux sets them.
        row.commit_word(0, 0, u64::MAX, 4, &costs, &mut outcome);
        assert_eq!(row.aux_word(0), 0b1111);
        assert_eq!(outcome.cells_programmed, 2);
        // Zero-width aux region is a no-op.
        let mut o2 = WordWriteOutcome::default();
        row.commit_word(1, 0, u64::MAX, 0, &costs, &mut o2);
        assert_eq!(row.aux_word(1), 0);
        assert_eq!(o2.cells_programmed, 0);
    }

    #[test]
    fn word_symbols_extraction() {
        let syms = word_symbols(0b11_01_00_10, 4, CellKind::Mlc);
        assert_eq!(syms, vec![0b10, 0b00, 0b01, 0b11]);
        let bits = word_symbols(0b1011, 4, CellKind::Slc);
        assert_eq!(bits, vec![1, 1, 0, 1]);
    }
}
