//! Start-Gap wear leveling (Qureshi et al., MICRO 2009).
//!
//! The paper's lifetime methodology cites Start-Gap as the standard way PCM
//! main memories spread writes across rows; coset coding attacks *intra*-row
//! wear (fewer and cheaper cell programs) while Start-Gap attacks *inter*-row
//! wear (hot logical rows migrate over physical rows). This module provides
//! the address-remapping layer so the two can be composed: the experiment
//! harness can interpose a [`StartGap`] between logical row addresses and
//! the [`crate::PcmMemory`] physical rows.
//!
//! The algebraic remapping follows the original design: a region of `n`
//! logical rows is stored in `n + 1` physical rows; one physical row (the
//! *gap*) is unused; every `gap_write_interval` writes the gap moves down by
//! one position (rotating one row's contents into the old gap), and after
//! `n + 1` gap movements the whole mapping has rotated by one (tracked by
//! `start`).

/// Start-Gap address remapper for one memory region.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StartGap {
    /// Number of logical rows managed.
    logical_rows: u64,
    /// Current gap position within the `logical_rows + 1` physical rows.
    gap: u64,
    /// Current rotation of the mapping (0..logical_rows).
    start: u64,
    /// Writes observed since the last gap movement.
    writes_since_move: u64,
    /// Gap movement interval in writes (the paper's reference uses 100).
    gap_write_interval: u64,
    /// Total writes serviced.
    total_writes: u64,
    /// Total gap movements performed (each one costs one extra row write).
    gap_moves: u64,
}

impl StartGap {
    /// Creates a remapper for `logical_rows` rows with the classic interval
    /// of 100 writes per gap movement.
    ///
    /// # Panics
    ///
    /// Panics if `logical_rows` is zero.
    pub fn new(logical_rows: u64) -> Self {
        Self::with_interval(logical_rows, 100)
    }

    /// Creates a remapper with an explicit gap-movement interval.
    ///
    /// # Panics
    ///
    /// Panics if `logical_rows` or `gap_write_interval` is zero.
    pub fn with_interval(logical_rows: u64, gap_write_interval: u64) -> Self {
        assert!(logical_rows > 0, "need at least one logical row");
        assert!(gap_write_interval > 0, "gap interval must be non-zero");
        StartGap {
            logical_rows,
            gap: logical_rows, // the spare row starts as the gap
            start: 0,
            writes_since_move: 0,
            gap_write_interval,
            total_writes: 0,
            gap_moves: 0,
        }
    }

    /// Number of logical rows managed.
    pub fn logical_rows(&self) -> u64 {
        self.logical_rows
    }

    /// Number of physical rows required (`logical_rows + 1`).
    pub fn physical_rows(&self) -> u64 {
        self.logical_rows + 1
    }

    /// Total writes serviced so far.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Total gap movements (each implies one extra physical row write of
    /// migration traffic).
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Extra write overhead introduced by gap movements, as a fraction of
    /// serviced writes.
    pub fn write_overhead(&self) -> f64 {
        if self.total_writes == 0 {
            0.0
        } else {
            self.gap_moves as f64 / self.total_writes as f64
        }
    }

    /// Maps a logical row address to its current physical row.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= logical_rows`.
    pub fn physical_of(&self, logical: u64) -> u64 {
        assert!(logical < self.logical_rows, "logical row out of range");
        let rotated = (logical + self.start) % self.logical_rows;
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    /// Records one serviced write and, if the interval elapsed, moves the
    /// gap. Returns `Some((from_physical, to_physical))` when a migration
    /// (copy of one row into the gap) must be performed by the caller.
    pub fn note_write(&mut self) -> Option<(u64, u64)> {
        self.total_writes += 1;
        self.writes_since_move += 1;
        if self.writes_since_move < self.gap_write_interval {
            return None;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;

        if self.gap == 0 {
            // Wrap: the gap returns to the top and the mapping rotates.
            self.gap = self.logical_rows;
            self.start = (self.start + 1) % self.logical_rows;
            None
        } else {
            // Row just above the gap slides down into it.
            let from = self.gap - 1;
            let to = self.gap;
            self.gap -= 1;
            Some((from, to))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_accessors() {
        let sg = StartGap::new(16);
        assert_eq!(sg.logical_rows(), 16);
        assert_eq!(sg.physical_rows(), 17);
        assert_eq!(sg.total_writes(), 0);
        assert_eq!(sg.gap_moves(), 0);
        assert_eq!(sg.write_overhead(), 0.0);
    }

    #[test]
    fn mapping_is_a_bijection_at_all_times() {
        let mut sg = StartGap::with_interval(8, 3);
        for _ in 0..200 {
            let mapped: HashSet<u64> = (0..8).map(|l| sg.physical_of(l)).collect();
            assert_eq!(mapped.len(), 8, "mapping must stay injective");
            assert!(mapped.iter().all(|p| *p < sg.physical_rows()));
            sg.note_write();
        }
    }

    #[test]
    fn gap_moves_at_the_configured_interval() {
        let mut sg = StartGap::with_interval(4, 10);
        let mut moves = 0;
        for _ in 0..100 {
            if sg.note_write().is_some() || sg.gap_moves() > moves {
                moves = sg.gap_moves();
            }
        }
        assert_eq!(sg.gap_moves(), 10);
        assert!((sg.write_overhead() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rotation_changes_the_physical_location_of_a_hot_row() {
        // Keep writing; eventually logical row 0 must occupy different
        // physical rows (that is the whole point of start-gap).
        let mut sg = StartGap::with_interval(8, 1);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(sg.physical_of(0));
            sg.note_write();
        }
        assert!(
            seen.len() >= 8,
            "hot logical row should visit many physical rows, saw {}",
            seen.len()
        );
    }

    #[test]
    fn migration_copies_row_above_gap_into_gap() {
        let mut sg = StartGap::with_interval(4, 1);
        // First movement: gap is at position 4 (the spare), row 3 slides in.
        let mig = sg.note_write();
        assert_eq!(mig, Some((3, 4)));
        let mig = sg.note_write();
        assert_eq!(mig, Some((2, 3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_row_panics() {
        let sg = StartGap::new(4);
        sg.physical_of(4);
    }
}
