//! Random Coset Coding (RCC).
//!
//! RCC(n, N) stores `N` independent random coset candidates of length `n`
//! (Section III). Each write XORs the data block with every candidate,
//! evaluates the cost of each result against the destination, and keeps the
//! cheapest; `log2(N)` auxiliary bits record the winning index. RCC is the
//! quality upper bound that VCC approximates at a fraction of the hardware
//! cost (Figures 6 and 7).

use rand::Rng;

use crate::block::Block;
use crate::context::WriteContext;
use crate::cost::CostFunction;
use crate::encoder::{EncodeScratch, Encoded, Encoder};

/// Random coset coding with stored full-length coset candidates.
///
/// # Examples
///
/// ```
/// use coset::{Rcc, Block, WriteContext, Encoder, cost::BitFlips};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let rcc = Rcc::random(64, 16, &mut rng);
/// let data = Block::random(&mut rng, 64);
/// let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, rcc.aux_bits());
/// let enc = rcc.encode(&data, &ctx, &BitFlips);
/// assert_eq!(rcc.decode(&enc.codeword, enc.aux), data);
/// ```
#[derive(Debug, Clone)]
pub struct Rcc {
    block_bits: usize,
    cosets: Vec<Block>,
    /// All coset candidates' backing words, flattened contiguously
    /// (`words_per_block` words per candidate) so the broadcast-SWAR
    /// candidate loop streams them without per-Block pointer chasing.
    coset_words: Vec<u64>,
    words_per_block: usize,
    aux_bits: u32,
}

impl Rcc {
    /// Builds an RCC encoder from explicit coset candidates.
    ///
    /// The first candidate is conventionally the all-zero coset so that RCC
    /// is never worse than unencoded writeback; callers that want the pure
    /// random construction of the paper can pass fully random candidates.
    ///
    /// # Panics
    ///
    /// Panics if `cosets` is empty, its length is not a power of two, or any
    /// candidate's width differs from `block_bits`.
    pub fn new(block_bits: usize, cosets: Vec<Block>) -> Self {
        assert!(!cosets.is_empty(), "at least one coset candidate required");
        assert!(
            cosets.len().is_power_of_two(),
            "coset count must be a power of two"
        );
        for c in &cosets {
            assert_eq!(c.len(), block_bits, "coset width mismatch");
        }
        let aux_bits = cosets.len().trailing_zeros();
        let words_per_block = block_bits.div_ceil(64);
        let coset_words = cosets
            .iter()
            .flat_map(|c| c.words().iter().copied())
            .collect();
        Rcc {
            block_bits,
            cosets,
            coset_words,
            words_per_block,
            aux_bits,
        }
    }

    /// Builds RCC(n, N) with `n_cosets` uniformly random candidates.
    pub fn random<R: Rng + ?Sized>(block_bits: usize, n_cosets: usize, rng: &mut R) -> Self {
        let cosets = (0..n_cosets)
            .map(|_| Block::random(rng, block_bits))
            .collect();
        Self::new(block_bits, cosets)
    }

    /// Builds RCC whose first candidate is the zero coset (identity) and the
    /// rest are random — the "hybrid" variant mentioned in the conclusion
    /// that also serves biased data.
    pub fn random_with_identity<R: Rng + ?Sized>(
        block_bits: usize,
        n_cosets: usize,
        rng: &mut R,
    ) -> Self {
        assert!(n_cosets >= 1);
        let mut cosets = vec![Block::zeros(block_bits)];
        cosets.extend((1..n_cosets).map(|_| Block::random(rng, block_bits)));
        Self::new(block_bits, cosets)
    }

    /// Number of coset candidates.
    pub fn num_cosets(&self) -> usize {
        self.cosets.len()
    }

    /// The stored coset candidates.
    pub fn cosets(&self) -> &[Block] {
        &self.cosets
    }
}

impl Encoder for Rcc {
    fn name(&self) -> &str {
        "rcc"
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        self.aux_bits
    }

    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        let mut out = Encoded::placeholder(self.block_bits);
        self.encode_into(data, ctx, cost, &mut EncodeScratch::new(), &mut out);
        out
    }

    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        // Broadcast-SWAR path: cost every coset candidate word-by-word with
        // masked popcounts over the transition-class planes — candidate
        // words are formed on the fly with one XOR each, and only the
        // winning candidate is ever materialized into a Block.
        if let Some(model) = ctx.cost_model(cost) {
            let words = data.words();
            let mut best = crate::cost::FixedCost::ZERO;
            let mut best_idx = 0usize;
            let mut found = false;
            for (i, cws) in self
                .coset_words
                .chunks_exact(self.words_per_block)
                .enumerate()
            {
                let mut c = crate::cost::FixedCost::ZERO;
                for (w, (&dw, &cw)) in words.iter().zip(cws.iter()).enumerate() {
                    c += model.word_cost(w, dw ^ cw);
                }
                // Aux-cost pruning: costs are non-negative, so a candidate
                // whose data cost alone already loses cannot win.
                if found && c.packed() >= best.packed() {
                    continue;
                }
                let total = c + model.aux_cost(i as u64);
                if !found || total.packed() < best.packed() {
                    best = total;
                    best_idx = i;
                    found = true;
                }
            }
            out.codeword.xor_words_from(data, &self.cosets[best_idx]);
            out.aux = best_idx as u64;
            out.cost = best.to_cost();
            return;
        }
        // Scalar fallback (objectives without transition classes).
        let cand = EncodeScratch::slot(&mut scratch.cand, self.block_bits);
        let mut found = false;
        for (i, coset) in self.cosets.iter().enumerate() {
            cand.copy_from(data);
            cand.xor_assign(coset);
            let aux = i as u64;
            let c = ctx.data_cost(cost, cand) + ctx.aux_cost(cost, aux);
            if !found || c.is_better_than(&out.cost) {
                std::mem::swap(&mut out.codeword, cand);
                out.aux = aux;
                out.cost = c;
                found = true;
            }
        }
    }

    fn decode(&self, codeword: &Block, aux: u64) -> Block {
        assert_eq!(codeword.len(), self.block_bits, "codeword width mismatch");
        let idx = (aux as usize) & (self.cosets.len() - 1);
        codeword.xor(&self.cosets[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount, SawCount, WriteEnergy};
    use crate::encoder::check_roundtrip;
    use crate::StuckBits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_checks() {
        let mut rng = StdRng::seed_from_u64(20);
        let rcc = Rcc::random(64, 16, &mut rng);
        assert_eq!(rcc.num_cosets(), 16);
        assert_eq!(rcc.aux_bits(), 4);
        assert_eq!(rcc.block_bits(), 64);
        assert_eq!(rcc.name(), "rcc");

        let hybrid = Rcc::random_with_identity(64, 8, &mut rng);
        assert_eq!(hybrid.cosets()[0].count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut rng = StdRng::seed_from_u64(21);
        Rcc::random(64, 12, &mut rng);
    }

    #[test]
    fn roundtrip_many_costs() {
        let mut rng = StdRng::seed_from_u64(22);
        for n in [2usize, 4, 16, 64] {
            let rcc = Rcc::random(64, n, &mut rng);
            check_roundtrip(&rcc, &BitFlips, &mut rng, 50);
            check_roundtrip(&rcc, &WriteEnergy::mlc(), &mut rng, 20);
        }
    }

    #[test]
    fn more_cosets_never_hurt_ones_count() {
        // With the same leading candidates, a superset of cosets can only
        // find an equal or better candidate.
        let mut rng = StdRng::seed_from_u64(23);
        let big = Rcc::random(64, 64, &mut rng);
        let small = Rcc::new(64, big.cosets()[..8].to_vec());
        let mut better_or_equal = 0;
        let trials = 200;
        for _ in 0..trials {
            let data = Block::random(&mut rng, 64);
            // Zero aux width so candidate selection depends on data cost only
            // and the superset property holds exactly.
            let ctx = WriteContext::blank(64, 0);
            let cb = big.encode(&data, &ctx, &OnesCount);
            let cs = small.encode(&data, &ctx, &OnesCount);
            if cb.codeword.count_ones() <= cs.codeword.count_ones() {
                better_or_equal += 1;
            }
        }
        assert_eq!(better_or_equal, trials);
    }

    #[test]
    fn hybrid_identity_is_no_worse_than_unencoded() {
        let mut rng = StdRng::seed_from_u64(24);
        let rcc = Rcc::random_with_identity(64, 16, &mut rng);
        for _ in 0..100 {
            let data = Block::random(&mut rng, 64);
            let old = Block::random(&mut rng, 64);
            let ctx = WriteContext::new(old.clone(), 0, rcc.aux_bits());
            let enc = rcc.encode(&data, &ctx, &BitFlips);
            assert!(
                enc.codeword.hamming_distance(&old) <= data.hamming_distance(&old),
                "hybrid RCC must not increase data-bit flips"
            );
        }
    }

    #[test]
    fn masks_faults_better_with_more_cosets() {
        let mut rng = StdRng::seed_from_u64(25);
        let big = Rcc::random(64, 128, &mut rng);
        let small = Rcc::new(64, big.cosets()[..2].to_vec());
        let mut saw_big = 0u32;
        let mut saw_small = 0u32;
        for _ in 0..300 {
            let data = Block::random(&mut rng, 64);
            let mut stuck = StuckBits::none(64);
            for _ in 0..3 {
                let idx = rand::Rng::gen_range(&mut rng, 0..64);
                stuck.stick_bit(idx, rand::Rng::gen_bool(&mut rng, 0.5));
            }
            let ctx =
                WriteContext::new(Block::random(&mut rng, 64), 0, 7).with_stuck(stuck.clone());
            let eb = big.encode(&data, &ctx, &SawCount);
            let es = small.encode(&data, &ctx, &SawCount);
            saw_big += stuck.saw_count(&eb.codeword);
            saw_small += stuck.saw_count(&es.codeword);
        }
        assert!(
            saw_big < saw_small,
            "128 cosets should mask more faults than 2 ({saw_big} vs {saw_small})"
        );
    }
}
