//! Analytical models of coset-coding effectiveness (Section III).
//!
//! These closed-form expressions reproduce Figure 1 of the paper: the
//! expected reduction in changed bits achieved by random coset coding (RCC,
//! Equation 1) and biased coset coding (BCC, Equation 2) on uniformly random
//! data, as a function of the number of coset candidates.

/// Natural logarithm of `n!` computed by summation (exact enough for the
/// block sizes used here, n ≤ 4096).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Binomial coefficient `C(n, k)` as `f64`, computed in log space to avoid
/// overflow.
///
/// # Examples
///
/// ```
/// use coset::analysis::binomial;
/// assert_eq!(binomial(5, 2), 10.0);
/// ```
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k))
        .exp()
        .round()
}

/// Probability that a Binomial(n, p) variable is at most `m`.
pub fn binomial_cdf(n: u64, p: f64, m: u64) -> f64 {
    let mut acc = 0.0;
    for i in 0..=m.min(n) {
        let ln_term = ln_factorial(n) - ln_factorial(i) - ln_factorial(n - i)
            + (i as f64) * p.ln()
            + ((n - i) as f64) * (1.0 - p).ln();
        acc += ln_term.exp();
    }
    acc.min(1.0)
}

/// Equation 1: expected number of changed bits in an `n`-bit random block
/// encoded with the best of `n_cosets` independent random coset candidates
/// (not counting auxiliary bits).
///
/// Uses `E[X] = Σ_m P(X > m)` where `P(X > m)` for the minimum of
/// `n_cosets` i.i.d. Binomial(n, ½) costs is the product of the individual
/// tail probabilities.
pub fn expected_flips_rcc(n: u64, n_cosets: u32) -> f64 {
    let p = 0.5;
    let mut expected = 0.0;
    for m in 0..n {
        let tail = 1.0 - binomial_cdf(n, p, m);
        expected += tail.powi(n_cosets as i32);
    }
    expected
}

/// Equation 2: expected number of changed bits in an `n`-bit random block
/// encoded with biased coset coding over `k = log2(n_cosets)` sections
/// (Flip-N-Write with `k` sections), including each section's auxiliary flag
/// bit in the count.
///
/// # Panics
///
/// Panics if `n_cosets` is not a power of two ≥ 2 or `log2(n_cosets)` does
/// not divide `n`.
pub fn expected_flips_bcc(n: u64, n_cosets: u32) -> f64 {
    assert!(
        n_cosets.is_power_of_two() && n_cosets >= 2,
        "BCC requires a power-of-two coset count ≥ 2"
    );
    let k = n_cosets.trailing_zeros() as u64;
    assert!(
        n.is_multiple_of(k),
        "section count {k} must divide block size {n}"
    );
    let s = n / k; // bits per section (excluding the flag bit)
    let w = s + 1; // section plus its flag bit
    let denom = 2f64.powi(w as i32);
    let mut per_section = 0.0;
    // Sections with at most half the bits set are written directly (cost i);
    // heavier sections are inverted (cost w - i).
    for i in 0..=(s / 2) {
        per_section += (i as f64) * binomial(w, i) / denom;
    }
    for i in (s / 2 + 1)..=w {
        per_section += ((w - i) as f64) * binomial(w, i) / denom;
    }
    per_section * k as f64
}

/// Expected changed bits for an unencoded random block: `n / 2`.
pub fn expected_flips_unencoded(n: u64) -> f64 {
    n as f64 / 2.0
}

/// A single point of the Figure 1 comparison.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig1Point {
    /// Number of coset candidates.
    pub n_cosets: u32,
    /// Percentage reduction in changed bits for RCC (aux bits included).
    pub rcc_reduction_pct: f64,
    /// Percentage reduction in changed bits for BCC (aux bits included).
    pub bcc_reduction_pct: f64,
}

/// Reproduces one point of Figure 1 for block size `n` and `n_cosets`
/// candidates: percentage reduction in changed bits relative to the
/// unencoded block. As in the paper's figure, the RCC curve plots the data
/// block itself (Equation 1); the BCC curve follows Equation 2, whose
/// per-section expectation already includes the flag bit.
///
/// Use [`expected_flips_rcc_with_aux`] for the variant that charges RCC the
/// expected `log2(N)/2` auxiliary-bit flips.
pub fn fig1_point(n: u64, n_cosets: u32) -> Fig1Point {
    let base = expected_flips_unencoded(n);
    let rcc = expected_flips_rcc(n, n_cosets);
    let bcc = expected_flips_bcc(n, n_cosets);
    Fig1Point {
        n_cosets,
        rcc_reduction_pct: 100.0 * (base - rcc) / base,
        bcc_reduction_pct: 100.0 * (base - bcc) / base,
    }
}

/// Equation 1 plus the expected `log2(N)/2` flips of the auxiliary index
/// bits (the full accounting discussed below Equation 1 in the paper).
pub fn expected_flips_rcc_with_aux(n: u64, n_cosets: u32) -> f64 {
    expected_flips_rcc(n, n_cosets) + (n_cosets as f64).log2() / 2.0
}

/// Computational-complexity model of Section IV: relative number of
/// kernel-evaluation operations needed by VCC(n, N, r) versus RCC(n, N)
/// for the same effective coset count.
///
/// Returns `(vcc_ops, rcc_ops)` where an "op" is one kernel-width
/// XOR+cost evaluation (`Δ` in the paper).
pub fn evaluation_ops(partitions: u32, kernels: u32) -> (u64, u64) {
    let p = partitions as u64;
    let r = kernels as u64;
    let vcc = 2 * p * r;
    let rcc = p * r * (1u64 << p);
    (vcc, rcc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(64, 1), 64.0);
        assert_eq!(binomial(5, 6), 0.0);
        // Large values stay finite and sane.
        let c = binomial(64, 32);
        assert!(c > 1.8e18 && c < 1.9e18);
    }

    #[test]
    fn binomial_cdf_bounds() {
        assert!((binomial_cdf(64, 0.5, 64) - 1.0).abs() < 1e-9);
        assert!((binomial_cdf(64, 0.5, 31) - 0.46).abs() < 0.05);
        assert!(binomial_cdf(64, 0.5, 0) < 1e-15);
    }

    #[test]
    fn rcc_expectation_decreases_with_cosets() {
        let n = 64;
        let e1 = expected_flips_rcc(n, 1);
        let e2 = expected_flips_rcc(n, 2);
        let e16 = expected_flips_rcc(n, 16);
        let e256 = expected_flips_rcc(n, 256);
        assert!(
            (e1 - 32.0).abs() < 0.5,
            "single coset ≈ unencoded, got {e1}"
        );
        assert!(e2 < e1 && e16 < e2 && e256 < e16);
        // With 256 cosets the minimum of 256 Binomial(64, ½) draws is ≈ 22-24.
        assert!(e256 > 20.0 && e256 < 25.0, "e256 = {e256}");
    }

    #[test]
    fn bcc_expectation_matches_fnw_intuition() {
        // With 2 cosets (one section of 64 bits + flag), expected flips just
        // under 32 (inverting only helps the rare heavy blocks).
        let e2 = expected_flips_bcc(64, 2);
        assert!(e2 < 32.0 && e2 > 28.0, "e2 = {e2}");
        // More sections help further.
        let e16 = expected_flips_bcc(64, 16);
        assert!(e16 < e2);
    }

    #[test]
    fn fig1_shape_matches_paper() {
        // Figure 1: with few cosets BCC beats RCC; with 16 they are close;
        // with 256 RCC wins by a wide margin, reaching ~30% reduction.
        let p2 = fig1_point(64, 2);
        let p4 = fig1_point(64, 4);
        let p16 = fig1_point(64, 16);
        let p256 = fig1_point(64, 256);
        assert!(p2.bcc_reduction_pct > p2.rcc_reduction_pct);
        assert!(p16.rcc_reduction_pct > p16.bcc_reduction_pct);
        assert!(p256.rcc_reduction_pct > p256.bcc_reduction_pct + 5.0);
        // The full-accounting RCC variant is costlier than the plain one.
        assert!(expected_flips_rcc_with_aux(64, 4) > expected_flips_rcc(64, 4));
        assert!(
            p256.rcc_reduction_pct > 25.0 && p256.rcc_reduction_pct < 40.0,
            "RCC-256 reduction = {:.1}%",
            p256.rcc_reduction_pct
        );
        // BCC at 4 cosets is in the paper's ~10% band.
        assert!(p4.bcc_reduction_pct > 8.0 && p4.bcc_reduction_pct < 16.0);
        // Monotonic improvement for RCC.
        assert!(p4.rcc_reduction_pct > p2.rcc_reduction_pct);
        assert!(p16.rcc_reduction_pct > p4.rcc_reduction_pct);
        assert!(p256.rcc_reduction_pct > p16.rcc_reduction_pct);
    }

    #[test]
    fn evaluation_ops_ratio_is_2_pow_p_minus_1() {
        let (vcc, rcc) = evaluation_ops(4, 16);
        assert_eq!(vcc, 2 * 4 * 16);
        assert_eq!(rcc, 4 * 16 * 16);
        assert_eq!(rcc / vcc, 1 << 3); // 2^(p-1)
    }
}
