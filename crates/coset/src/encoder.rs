//! The [`Encoder`] abstraction shared by every data-transformation scheme.
//!
//! All techniques compared in the paper — unencoded writeback, DBI,
//! Flip-N-Write, Flipcy, biased coset coding, random coset coding and
//! Virtual Coset Coding — implement the same contract: given the block to
//! write and the [`WriteContext`] describing the destination, produce a
//! codeword plus auxiliary bits minimizing a [`CostFunction`], such that the
//! original data can be recovered from the codeword and the auxiliary bits
//! alone.

use crate::block::Block;
use crate::context::WriteContext;
use crate::cost::{Cost, CostFunction};
use crate::kernel::KernelSet;

/// Result of encoding one data block.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// The transformed block that will be written to the data cells.
    pub codeword: Block,
    /// Auxiliary bits identifying the transformation (coset index, flags…).
    pub aux: u64,
    /// Cost of the selected candidate (data + auxiliary bits) under the
    /// encoder's cost function.
    pub cost: Cost,
}

impl Encoded {
    /// An all-zero placeholder result for `block_bits`-bit codewords, used
    /// as the reusable output slot of [`Encoder::encode_into`].
    pub fn placeholder(block_bits: usize) -> Self {
        Encoded {
            codeword: Block::zeros(block_bits.max(1)),
            aux: 0,
            cost: Cost::ZERO,
        }
    }
}

/// Reusable buffers for allocation-free encoding sessions.
///
/// The encoders evaluate up to hundreds of coset candidates per 64-bit
/// word; allocating a fresh [`Block`] per candidate dominates the hot path.
/// An `EncodeScratch` owns every intermediate buffer the built-in encoders
/// need, so after a one-write warm-up, [`Encoder::encode_into`] and
/// [`Encoder::encode_line`] perform **no heap allocation at all**.
///
/// One scratch may be shared across different encoders and cost functions;
/// buffers are resized on demand. Contents between calls are unspecified.
///
/// # Examples
///
/// ```
/// use coset::{Block, EncodeScratch, Encoded, Encoder, Vcc, WriteContext};
/// use coset::cost::WriteEnergy;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let vcc = Vcc::paper_mlc(256);
/// let mut scratch = EncodeScratch::new();
/// let mut out = Encoded::placeholder(vcc.block_bits());
///
/// let mut rng = StdRng::seed_from_u64(9);
/// for _ in 0..4 {
///     let data = Block::random(&mut rng, 64);
///     let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits());
///     vcc.encode_into(&data, &ctx, &WriteEnergy::mlc(), &mut scratch, &mut out);
///     assert_eq!(vcc.decode(&out.codeword, out.aux), data);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    /// Candidate codeword (or right-digit vector) under evaluation.
    pub(crate) cand: Option<Block>,
    /// Best candidate found so far (swap-tracked runner-up buffer).
    pub(crate) best: Option<Block>,
    /// MLC left-digit vector of the data block.
    pub(crate) left: Option<Block>,
    /// MLC right-digit vector of the data block.
    pub(crate) right: Option<Block>,
    /// Left digits as they will actually be stored (stuck cells applied).
    pub(crate) stored_left: Option<Block>,
    /// Regenerated Algorithm-2 kernel set.
    pub(crate) kernels: KernelSet,
    /// Data-word staging block used by [`Encoder::encode_line`].
    line_word: Option<Block>,
}

impl EncodeScratch {
    /// Creates an empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        EncodeScratch::default()
    }

    /// Borrows a slot, resized to exactly `len` zeroed bits.
    ///
    /// This is the **only** way encoder code obtains a scratch buffer, and
    /// the returned block is always correctly sized regardless of what a
    /// previous encode (possibly at a different width, possibly swapping
    /// buffers around) left behind. Callers must not swap a slot with a
    /// buffer of a different length mid-loop — park winners in a second
    /// same-width slot instead (see `Vcc::encode_full_block_scalar`).
    pub(crate) fn slot(slot: &mut Option<Block>, len: usize) -> &mut Block {
        let b = slot.get_or_insert_with(|| Block::zeros(len));
        b.reset_zeros(len);
        b
    }
}

/// A data transformation scheme protecting writes to an NVM word.
///
/// # Contract
///
/// For every data block `d` and context `ctx`:
/// `decode(encode(d, ctx, cf).codeword, encode(d, ctx, cf).aux) == d`.
///
/// Encoders never inspect the *data* semantically — they must behave
/// identically for encrypted (random) and plain data, which is the premise
/// of the paper.
pub trait Encoder: Send + Sync {
    /// Short machine-friendly name ("vcc", "rcc", "fnw", …).
    fn name(&self) -> &str;

    /// Width of the data blocks this encoder instance operates on, in bits.
    fn block_bits(&self) -> usize;

    /// Number of auxiliary bits produced for every data block.
    fn aux_bits(&self) -> u32;

    /// Chooses the cheapest codeword for `data` written into `ctx`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `data.len() != self.block_bits()` or the
    /// context's data length differs.
    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded;

    /// Session variant of [`Encoder::encode`]: writes the result into `out`,
    /// reusing `scratch` buffers so steady-state encoding performs no heap
    /// allocation.
    ///
    /// Produces a bit-identical result to `encode` (same codeword, aux and
    /// cost). The default implementation simply delegates to `encode`; all
    /// built-in encoders override it with allocation-free candidate
    /// evaluation.
    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        let _ = scratch;
        *out = self.encode(data, ctx, cost);
    }

    /// Batch entry point: encodes every word of a cache line in one call.
    ///
    /// `line[w]` holds word `w` as a little-endian `u64` (so this requires
    /// `block_bits() <= 64`) and `ctxs[w]` describes its destination.
    /// Results land in `out`, which is resized as needed and whose `Encoded`
    /// slots are reused across calls — with a warmed-up `scratch` the whole
    /// 512-bit line encodes without heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `line` and `ctxs` have different lengths or the encoder is
    /// wider than 64 bits.
    fn encode_line(
        &self,
        line: &[u64],
        ctxs: &[WriteContext],
        cost: &dyn CostFunction,
        scratch: &mut EncodeScratch,
        out: &mut Vec<Encoded>,
    ) {
        assert_eq!(line.len(), ctxs.len(), "line/context length mismatch");
        let bits = self.block_bits();
        assert!(bits <= 64, "encode_line requires block_bits() <= 64");
        if out.len() != line.len() {
            out.resize_with(line.len(), || Encoded::placeholder(bits));
        }
        // Take the staging block out of the scratch so the scratch can be
        // lent to encode_into while the word is borrowed.
        let mut word = scratch
            .line_word
            .take()
            .unwrap_or_else(|| Block::zeros(bits));
        for (w, (&data, ctx)) in line.iter().zip(ctxs.iter()).enumerate() {
            word.set_from_u64(data, bits);
            self.encode_into(&word, ctx, cost, scratch, &mut out[w]);
        }
        scratch.line_word = Some(word);
    }

    /// Recovers the original data from a stored codeword and its aux bits.
    fn decode(&self, codeword: &Block, aux: u64) -> Block;
}

/// Unencoded writeback: the identity transformation (the paper's baseline).
#[derive(Debug, Clone, Copy)]
pub struct Unencoded {
    block_bits: usize,
}

impl Unencoded {
    /// Creates an identity "encoder" for `block_bits`-bit words.
    pub fn new(block_bits: usize) -> Self {
        assert!(block_bits > 0, "block width must be non-zero");
        Unencoded { block_bits }
    }
}

impl Encoder for Unencoded {
    fn name(&self) -> &str {
        "unencoded"
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        0
    }

    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        let mut out = Encoded::placeholder(self.block_bits);
        self.encode_into(data, ctx, cost, &mut EncodeScratch::new(), &mut out);
        out
    }

    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        _scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        out.codeword.copy_from(data);
        out.aux = 0;
        out.cost = ctx.data_cost(cost, data);
    }

    fn decode(&self, codeword: &Block, _aux: u64) -> Block {
        codeword.clone()
    }
}

/// Checks the encode/decode round-trip property for an encoder on random
/// data and contexts; used by tests of every scheme and exposed so
/// downstream crates can validate custom encoders.
///
/// Returns the number of trials performed.
///
/// # Panics
///
/// Panics on the first round-trip failure.
pub fn check_roundtrip<R: rand::Rng>(
    encoder: &dyn Encoder,
    cost: &dyn CostFunction,
    rng: &mut R,
    trials: usize,
) -> usize {
    for t in 0..trials {
        let data = Block::random(rng, encoder.block_bits());
        let old = Block::random(rng, encoder.block_bits());
        let ctx = WriteContext::new(old, rng.gen(), encoder.aux_bits());
        let enc = encoder.encode(&data, &ctx, cost);
        let back = encoder.decode(&enc.codeword, enc.aux);
        assert_eq!(
            back,
            data,
            "round-trip failure for {} on trial {t}",
            encoder.name()
        );
    }
    trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unencoded_is_identity() {
        let enc = Unencoded::new(64);
        let mut rng = StdRng::seed_from_u64(2);
        let data = Block::random(&mut rng, 64);
        let ctx = WriteContext::blank(64, 0);
        let e = enc.encode(&data, &ctx, &OnesCount);
        assert_eq!(e.codeword, data);
        assert_eq!(e.aux, 0);
        assert_eq!(e.cost.primary, data.count_ones() as f64);
        assert_eq!(enc.decode(&e.codeword, e.aux), data);
        assert_eq!(enc.aux_bits(), 0);
        assert_eq!(enc.block_bits(), 64);
        assert_eq!(enc.name(), "unencoded");
    }

    #[test]
    fn unencoded_roundtrip_harness() {
        let enc = Unencoded::new(32);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(check_roundtrip(&enc, &BitFlips, &mut rng, 50), 50);
    }

    /// Regression test for the `EncodeScratch::slot` stale-length footgun:
    /// one scratch and one `Encoded` slot driven back-to-back through
    /// encoders of different block widths (the scalar candidate loops used
    /// to swap stale-width buffers into the scratch mid-loop).
    #[test]
    fn scratch_and_output_survive_width_changes() {
        use crate::cost::{ScalarOnly, WriteEnergy};
        use crate::{Fnw, Rcc, Vcc};
        let mut rng = StdRng::seed_from_u64(9);
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(Vcc::stored(64, 16, 4, &mut rng)),
            Box::new(Vcc::stored(32, 16, 4, &mut rng)),
            Box::new(Vcc::paper_mlc(64)),
            Box::new(Rcc::random(48, 8, &mut rng)),
            Box::new(Fnw::with_sub_block(512, 16)),
            Box::new(Vcc::stored(64, 32, 4, &mut rng)),
        ];
        let mut scratch = EncodeScratch::new();
        let mut out = Encoded::placeholder(1);
        // Run both the broadcast and the scalar-forced routes through the
        // same scratch/output pair; every encode must match a fresh call.
        for cost in [
            Box::new(WriteEnergy::slc()) as Box<dyn crate::cost::CostFunction>,
            Box::new(ScalarOnly(WriteEnergy::slc())),
        ] {
            for round in 0..3 {
                for e in &encoders {
                    let data = Block::random(&mut rng, e.block_bits());
                    let ctx =
                        WriteContext::new(Block::random(&mut rng, e.block_bits()), 0, e.aux_bits());
                    e.encode_into(&data, &ctx, cost.as_ref(), &mut scratch, &mut out);
                    let fresh = e.encode(&data, &ctx, cost.as_ref());
                    assert_eq!(out.codeword, fresh.codeword, "{} round {round}", e.name());
                    assert_eq!(out.aux, fresh.aux, "{} round {round}", e.name());
                    assert_eq!(out.cost, fresh.cost, "{} round {round}", e.name());
                    assert_eq!(e.decode(&out.codeword, out.aux), data);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "data width mismatch")]
    fn unencoded_rejects_wrong_width() {
        let enc = Unencoded::new(64);
        let data = Block::zeros(32);
        let ctx = WriteContext::blank(32, 0);
        enc.encode(&data, &ctx, &OnesCount);
    }
}
