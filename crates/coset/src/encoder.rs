//! The [`Encoder`] abstraction shared by every data-transformation scheme.
//!
//! All techniques compared in the paper — unencoded writeback, DBI,
//! Flip-N-Write, Flipcy, biased coset coding, random coset coding and
//! Virtual Coset Coding — implement the same contract: given the block to
//! write and the [`WriteContext`] describing the destination, produce a
//! codeword plus auxiliary bits minimizing a [`CostFunction`], such that the
//! original data can be recovered from the codeword and the auxiliary bits
//! alone.

use crate::block::Block;
use crate::context::WriteContext;
use crate::cost::{Cost, CostFunction};

/// Result of encoding one data block.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// The transformed block that will be written to the data cells.
    pub codeword: Block,
    /// Auxiliary bits identifying the transformation (coset index, flags…).
    pub aux: u64,
    /// Cost of the selected candidate (data + auxiliary bits) under the
    /// encoder's cost function.
    pub cost: Cost,
}

/// A data transformation scheme protecting writes to an NVM word.
///
/// # Contract
///
/// For every data block `d` and context `ctx`:
/// `decode(encode(d, ctx, cf).codeword, encode(d, ctx, cf).aux) == d`.
///
/// Encoders never inspect the *data* semantically — they must behave
/// identically for encrypted (random) and plain data, which is the premise
/// of the paper.
pub trait Encoder: Send + Sync {
    /// Short machine-friendly name ("vcc", "rcc", "fnw", …).
    fn name(&self) -> &str;

    /// Width of the data blocks this encoder instance operates on, in bits.
    fn block_bits(&self) -> usize;

    /// Number of auxiliary bits produced for every data block.
    fn aux_bits(&self) -> u32;

    /// Chooses the cheapest codeword for `data` written into `ctx`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `data.len() != self.block_bits()` or the
    /// context's data length differs.
    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded;

    /// Recovers the original data from a stored codeword and its aux bits.
    fn decode(&self, codeword: &Block, aux: u64) -> Block;
}

/// Unencoded writeback: the identity transformation (the paper's baseline).
#[derive(Debug, Clone, Copy)]
pub struct Unencoded {
    block_bits: usize,
}

impl Unencoded {
    /// Creates an identity "encoder" for `block_bits`-bit words.
    pub fn new(block_bits: usize) -> Self {
        assert!(block_bits > 0, "block width must be non-zero");
        Unencoded { block_bits }
    }
}

impl Encoder for Unencoded {
    fn name(&self) -> &str {
        "unencoded"
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        0
    }

    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        let c = ctx.data_cost(cost, data);
        Encoded {
            codeword: data.clone(),
            aux: 0,
            cost: c,
        }
    }

    fn decode(&self, codeword: &Block, _aux: u64) -> Block {
        codeword.clone()
    }
}

/// Checks the encode/decode round-trip property for an encoder on random
/// data and contexts; used by tests of every scheme and exposed so
/// downstream crates can validate custom encoders.
///
/// Returns the number of trials performed.
///
/// # Panics
///
/// Panics on the first round-trip failure.
pub fn check_roundtrip<R: rand::Rng>(
    encoder: &dyn Encoder,
    cost: &dyn CostFunction,
    rng: &mut R,
    trials: usize,
) -> usize {
    for t in 0..trials {
        let data = Block::random(rng, encoder.block_bits());
        let old = Block::random(rng, encoder.block_bits());
        let ctx = WriteContext::new(old, rng.gen(), encoder.aux_bits());
        let enc = encoder.encode(&data, &ctx, cost);
        let back = encoder.decode(&enc.codeword, enc.aux);
        assert_eq!(
            back, data,
            "round-trip failure for {} on trial {t}",
            encoder.name()
        );
    }
    trials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unencoded_is_identity() {
        let enc = Unencoded::new(64);
        let mut rng = StdRng::seed_from_u64(2);
        let data = Block::random(&mut rng, 64);
        let ctx = WriteContext::blank(64, 0);
        let e = enc.encode(&data, &ctx, &OnesCount);
        assert_eq!(e.codeword, data);
        assert_eq!(e.aux, 0);
        assert_eq!(e.cost.primary, data.count_ones() as f64);
        assert_eq!(enc.decode(&e.codeword, e.aux), data);
        assert_eq!(enc.aux_bits(), 0);
        assert_eq!(enc.block_bits(), 64);
        assert_eq!(enc.name(), "unencoded");
    }

    #[test]
    fn unencoded_roundtrip_harness() {
        let enc = Unencoded::new(32);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(check_roundtrip(&enc, &BitFlips, &mut rng, 50), 50);
    }

    #[test]
    #[should_panic(expected = "data width mismatch")]
    fn unencoded_rejects_wrong_width() {
        let enc = Unencoded::new(64);
        let data = Block::zeros(32);
        let ctx = WriteContext::blank(32, 0);
        enc.encode(&data, &ctx, &OnesCount);
    }
}
