//! Flipcy: write the data, its one's complement, or its two's complement.
//!
//! Flipcy (Imran et al., ICCAD 2019) redistributes error-prone or expensive
//! MLC symbol patterns by choosing among three candidates per block. Two
//! auxiliary bits per block record which candidate was written. On unbiased
//! (encrypted) data its three fixed candidates give it little leverage,
//! which is exactly what the paper's Figures 11 and 12 show.

use crate::block::Block;
use crate::context::WriteContext;
use crate::cost::CostFunction;
use crate::encoder::{EncodeScratch, Encoded, Encoder};

/// The transformation selected by Flipcy for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// The data itself.
    Identity = 0,
    /// Bitwise complement.
    OnesComplement = 1,
    /// Arithmetic negation (two's complement) of the block interpreted as a
    /// little-endian unsigned integer.
    TwosComplement = 2,
}

impl Variant {
    fn from_aux(aux: u64) -> Variant {
        match aux & 0b11 {
            0 => Variant::Identity,
            1 => Variant::OnesComplement,
            2 => Variant::TwosComplement,
            _ => Variant::Identity,
        }
    }
}

/// Flipcy encoder over blocks of any width (multi-word two's complement is
/// computed with carry propagation).
#[derive(Debug, Clone, Copy)]
pub struct Flipcy {
    block_bits: usize,
}

impl Flipcy {
    /// Creates a Flipcy encoder for `block_bits`-bit blocks.
    pub fn new(block_bits: usize) -> Self {
        assert!(block_bits > 0, "block width must be non-zero");
        Flipcy { block_bits }
    }

    /// Two's complement of the block as a little-endian unsigned integer,
    /// modulo 2^len.
    fn twos_complement(data: &Block) -> Block {
        let mut out = data.clone();
        Self::twos_complement_in_place(&mut out);
        out
    }

    /// In-place two's complement: invert, then add one with carry
    /// propagation across words.
    fn twos_complement_in_place(b: &mut Block) {
        b.invert();
        let mut carry = 1u64;
        for w in b.words_mut().iter_mut() {
            if carry == 0 {
                break;
            }
            let (sum, overflow) = w.overflowing_add(carry);
            *w = sum;
            carry = u64::from(overflow);
        }
        b.mask_tail();
    }

    /// Applies `v` to `data` in place (`out` is overwritten).
    fn apply_into(data: &Block, v: Variant, out: &mut Block) {
        out.copy_from(data);
        match v {
            Variant::Identity => {}
            Variant::OnesComplement => out.invert(),
            Variant::TwosComplement => Self::twos_complement_in_place(out),
        }
    }
}

impl Encoder for Flipcy {
    fn name(&self) -> &str {
        "flipcy"
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        2
    }

    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        let mut out = Encoded::placeholder(self.block_bits);
        self.encode_into(data, ctx, cost, &mut EncodeScratch::new(), &mut out);
        out
    }

    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        // Broadcast-SWAR path: the identity and one's-complement candidates
        // are costed word-by-word straight off the data (one NOT per word);
        // only the two's complement needs materializing (carry chain), and
        // only the winner is written to the output. With just three
        // candidates the per-write model build only amortizes on multi-word
        // blocks, so single-word Flipcy stays on the scalar route.
        if self.block_bits > 64 {
            if let Some(model) = ctx.cost_model(cost) {
                let cand = EncodeScratch::slot(&mut scratch.cand, self.block_bits);
                cand.copy_from(data);
                Self::twos_complement_in_place(cand);
                let words = data.words();
                let mut best = crate::cost::FixedCost::ZERO;
                let mut best_v = Variant::Identity;
                let mut found = false;
                for v in [
                    Variant::Identity,
                    Variant::OnesComplement,
                    Variant::TwosComplement,
                ] {
                    let mut c = model.aux_cost(v as u64);
                    for (w, &dw) in words.iter().enumerate() {
                        let new = match v {
                            Variant::Identity => dw,
                            Variant::OnesComplement => !dw,
                            Variant::TwosComplement => cand.words()[w],
                        };
                        c += model.word_cost(w, new);
                    }
                    if !found || c.packed() < best.packed() {
                        best = c;
                        best_v = v;
                        found = true;
                    }
                }
                match best_v {
                    Variant::TwosComplement => out.codeword.copy_from(cand),
                    v => Self::apply_into(data, v, &mut out.codeword),
                }
                out.aux = best_v as u64;
                out.cost = best.to_cost();
                return;
            }
        }
        // Scalar fallback (objectives without transition classes).
        let cand = EncodeScratch::slot(&mut scratch.cand, self.block_bits);
        let mut found = false;
        for v in [
            Variant::Identity,
            Variant::OnesComplement,
            Variant::TwosComplement,
        ] {
            Self::apply_into(data, v, cand);
            let aux = v as u64;
            let c = ctx.data_cost(cost, cand) + ctx.aux_cost(cost, aux);
            if !found || c.is_better_than(&out.cost) {
                std::mem::swap(&mut out.codeword, cand);
                out.aux = aux;
                out.cost = c;
                found = true;
            }
        }
    }

    fn decode(&self, codeword: &Block, aux: u64) -> Block {
        assert_eq!(codeword.len(), self.block_bits, "codeword width mismatch");
        match Variant::from_aux(aux) {
            Variant::Identity => codeword.clone(),
            Variant::OnesComplement => codeword.inverted(),
            // Two's complement is an involution modulo 2^n.
            Variant::TwosComplement => Self::twos_complement(codeword),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount, WriteEnergy};
    use crate::encoder::check_roundtrip;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn twos_complement_matches_u64_negation() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let v: u64 = rand::Rng::gen(&mut rng);
            let b = Block::from_u64(v, 64);
            let neg = Flipcy::twos_complement(&b);
            assert_eq!(neg.as_u64(), v.wrapping_neg());
        }
    }

    #[test]
    fn twos_complement_is_involution_multiword() {
        let mut rng = StdRng::seed_from_u64(11);
        for len in [64usize, 100, 128, 512] {
            for _ in 0..20 {
                let b = Block::random(&mut rng, len);
                let twice = Flipcy::twos_complement(&Flipcy::twos_complement(&b));
                assert_eq!(twice, b, "double negation must be identity (len {len})");
            }
        }
    }

    #[test]
    fn picks_identity_when_rewriting_same_data() {
        let f = Flipcy::new(64);
        let mut rng = StdRng::seed_from_u64(12);
        let data = Block::random(&mut rng, 64);
        let ctx = WriteContext::new(data.clone(), 0, f.aux_bits());
        let enc = f.encode(&data, &ctx, &BitFlips);
        assert_eq!(enc.aux, 0);
        assert_eq!(enc.cost.primary, 0.0);
    }

    #[test]
    fn prefers_complement_of_heavy_blocks_for_ones_count() {
        let f = Flipcy::new(64);
        let data = Block::from_u64(u64::MAX, 64);
        let ctx = WriteContext::blank(64, f.aux_bits());
        let enc = f.encode(&data, &ctx, &OnesCount);
        assert!(enc.codeword.count_ones() <= 1, "should flip all-ones data");
        assert_eq!(f.decode(&enc.codeword, enc.aux), data);
    }

    #[test]
    fn roundtrip_various_widths_and_costs() {
        let mut rng = StdRng::seed_from_u64(13);
        for bits in [32usize, 64, 128, 512] {
            let f = Flipcy::new(bits);
            check_roundtrip(&f, &BitFlips, &mut rng, 50);
        }
        let f = Flipcy::new(64);
        check_roundtrip(&f, &WriteEnergy::mlc(), &mut rng, 50);
    }

    #[test]
    fn cost_never_exceeds_identity_cost() {
        let f = Flipcy::new(64);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let data = Block::random(&mut rng, 64);
            let old = Block::random(&mut rng, 64);
            let ctx = WriteContext::new(old, 0, f.aux_bits());
            let enc = f.encode(&data, &ctx, &BitFlips);
            let ident = ctx.data_cost(&BitFlips, &data) + ctx.aux_cost(&BitFlips, 0);
            assert!(
                enc.cost.primary <= ident.primary,
                "selected candidate must not cost more than identity"
            );
        }
    }
}
