//! Coset coding for encrypted non-volatile memories.
//!
//! This crate implements the data-transformation layer of *Virtual Coset
//! Coding for Encrypted Non-Volatile Memories with Multi-Level Cells*
//! (HPCA 2022): the VCC encoder itself (Algorithm 1), its runtime kernel
//! generator (Algorithm 2), and every baseline the paper compares against —
//! random coset coding (RCC), biased coset coding / Flip-N-Write / DBI, and
//! Flipcy — together with the cost functions (bit flips, MLC write energy,
//! stuck-at-wrong cells, lexicographic combinations) used to select coset
//! candidates, and the analytical effectiveness models of Section III.
//!
//! # Quick start
//!
//! One-shot encoding — simplest call, allocates per candidate evaluation:
//!
//! ```
//! use coset::{Vcc, Block, WriteContext, Encoder, cost::WriteEnergy};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! // The paper's canonical configuration: VCC(64, 256, 16) with kernels
//! // generated from the encrypted block's left digits.
//! let vcc = Vcc::paper_mlc(256);
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let encrypted = Block::random(&mut rng, 64);          // counter-mode ciphertext
//! let current = Block::random(&mut rng, 64);            // what the row holds now
//! let ctx = WriteContext::new(current, 0, vcc.aux_bits());
//!
//! let enc = vcc.encode(&encrypted, &ctx, &WriteEnergy::mlc());
//! assert_eq!(vcc.decode(&enc.codeword, enc.aux), encrypted);
//! ```
//!
//! # Encoding sessions (the hot path)
//!
//! A memory controller encodes billions of words with the same encoder, so
//! the hot-path API is a *session*: allocate an [`EncodeScratch`] and an
//! output slot once, then stream words through [`Encoder::encode_into`] (or
//! whole 512-bit cache lines through [`Encoder::encode_line`]) with **zero
//! steady-state heap allocation**. Results are bit-identical to `encode`.
//!
//! ```
//! use coset::{Vcc, Block, EncodeScratch, Encoded, WriteContext, Encoder};
//! use coset::cost::WriteEnergy;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let vcc = Vcc::paper_mlc(256);
//! let cost = WriteEnergy::mlc();
//! let mut scratch = EncodeScratch::new();
//! let mut out = Encoded::placeholder(vcc.block_bits());
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! for _ in 0..32 {
//!     let data = Block::random(&mut rng, 64);
//!     let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits());
//!     vcc.encode_into(&data, &ctx, &cost, &mut scratch, &mut out);
//!     assert_eq!(vcc.decode(&out.codeword, out.aux), data);
//! }
//! ```
//!
//! Higher layers rarely drive this directly: the `controller` crate's
//! `WritePipeline` wraps encryption, encoding sessions, PCM programming and
//! fault correction behind one `write_line` call.
//!
//! # The broadcast-SWAR cost engine
//!
//! The paper's VCC hardware evaluates every partition and both complement
//! forms of every kernel *in parallel*; the encoder hot path mirrors that
//! data-parallelism in software. Each objective that admits it compiles to
//! a handful of **transition classes** ([`cost::CostFunction::classes`]):
//! a per-bit integer cost plus a branchless rule deriving the
//! "programmed-bit plane" of a candidate word from the destination's
//! bit-planes. Per write, [`WriteContext::cost_model`] materializes a
//! [`CostModel`] — the destination's old-data / stuck-mask / stuck-value
//! words plus the compiled classes — and the encoders then:
//!
//! * broadcast each kernel across the block (`kernel_broadcast` words
//!   precomputed in [`KernelSet`], or regenerated per write for the
//!   Algorithm-2 deployment) and form whole-block candidate and complement
//!   words with two XORs,
//! * cost **every partition at once** with per-field popcounts over the
//!   class planes ([`cost::per_field_popcount`]), and
//! * pick the cheaper complement form per partition branch-free.
//!
//! Hot-loop costs accumulate in fixed-point [`FixedCost`] (`u64`
//! primary/secondary, compared as one packed `u128`); `f64` only reappears
//! at the [`Encoded`] boundary. Every built-in class cost is an integer
//! (counts, or the integer-picojoule Table I energies), so the fixed-point
//! sums convert exactly and the broadcast path is **bit-identical** to the
//! scalar route — pinned by the differential `cost_oracle` suite.
//!
//! **When the scalar fallback runs:** objectives without classes (custom
//! non-per-class or non-integer energy tables, or any cost wrapped in
//! [`cost::ScalarOnly`]), kernel widths that do not tile a 64-bit word,
//! partition widths that break the classes' cell alignment (odd widths
//! under an MLC objective), generated-kernel blocks wider than one word,
//! and single-word Flipcy (three candidates never amortize the model
//! build). The scalar loops are retained verbatim as the reference oracle.
//!
//! # Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`block`] | [`Block`], the bit container every encoder operates on |
//! | [`symbol`] | MLC Gray-code helpers, Morton-table digit shuffles |
//! | [`cost`] | [`cost::CostFunction`], the paper's objectives, transition classes |
//! | [`context`] | [`WriteContext`], [`StuckBits`] and the per-write [`CostModel`] |
//! | [`encoder`] | the [`Encoder`] trait, [`EncodeScratch`] sessions, unencoded baseline |
//! | [`fnw`] | Flip-N-Write, DBI and BCC |
//! | [`flipcy`] | Flipcy (identity / one's / two's complement) |
//! | [`rcc`] | random coset coding with stored candidates |
//! | [`kernel`] | coset kernels and the Algorithm 2 generator |
//! | [`vcc`] | Virtual Coset Coding (Algorithm 1) |
//! | [`analysis`] | Equations 1 and 2 (Figure 1 analytical model) |
//!
//! # Invariants
//!
//! Every `Encoder` implementation must be wired into the differential
//! suite (`tests/cost_oracle.rs`) — the workspace linter
//! (`cargo run -p detlint -- check`, rule ORACLE01) fails otherwise, and
//! rule SWAR01 keeps the broadcast modules' shifts and casts
//! mask-guarded. See `docs/INVARIANTS.md` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod block;
pub mod context;
pub mod cost;
pub mod encoder;
pub mod flipcy;
pub mod fnw;
pub mod kernel;
pub mod rcc;
pub mod symbol;
pub mod vcc;

pub use block::Block;
pub use context::{CostModel, StuckBits, WriteContext};
pub use cost::{Cost, CostFunction, FixedCost};
pub use encoder::{check_roundtrip, EncodeScratch, Encoded, Encoder, Unencoded};
pub use flipcy::Flipcy;
pub use fnw::Fnw;
pub use kernel::{broadcast_word, generate_kernels, GeneratorConfig, KernelSet};
pub use rcc::Rcc;
pub use symbol::CellKind;
pub use vcc::{Vcc, VccMode};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use cost::{BitFlips, OnesCount};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cross-encoder smoke test: every scheme round-trips under multiple
    /// cost functions.
    #[test]
    fn all_encoders_roundtrip() {
        let mut rng = StdRng::seed_from_u64(99);
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(Unencoded::new(64)),
            Box::new(Fnw::with_sub_block(64, 16)),
            Box::new(Fnw::dbi(64)),
            Box::new(Flipcy::new(64)),
            Box::new(Rcc::random(64, 16, &mut rng)),
            Box::new(Vcc::paper_stored(256, &mut rng)),
            Box::new(Vcc::paper_mlc(256)),
        ];
        for e in &encoders {
            check_roundtrip(e.as_ref(), &BitFlips, &mut rng, 30);
            check_roundtrip(e.as_ref(), &OnesCount, &mut rng, 30);
        }
    }

    #[test]
    fn aux_budget_matches_secded_overhead() {
        // Section IV-A: VCC(64, 256, 16) and RCC(64, 256) both need 8
        // auxiliary bits per 64-bit word — the 12.5% overhead budget of a
        // SECDED-protected memory.
        let mut rng = StdRng::seed_from_u64(100);
        assert_eq!(Vcc::paper_stored(256, &mut rng).aux_bits(), 8);
        assert_eq!(Vcc::paper_mlc(256).aux_bits(), 8);
        assert_eq!(Rcc::random(64, 256, &mut rng).aux_bits(), 8);
    }
}
