//! The memory-side context an encoder sees when servicing a write.
//!
//! Coset encoding is a read-modify-write scheme (Section II-C): before
//! writing, the controller reads the current contents of the target word and
//! consults the fault repository for known stuck cells. [`WriteContext`]
//! bundles that information for the encoders, and [`StuckBits`] describes
//! the stuck-at state of a bit range.

use crate::block::Block;
use crate::cost::{Cost, CostFunction, Field};

/// Stuck-at information for a block-sized region of memory.
///
/// Bit `i` of `mask` is `1` when the cell storing bit `i` can no longer be
/// programmed; `value` then records the value it is frozen at. For MLC
/// memories a stuck cell freezes both of its bits, so the mask always covers
/// whole symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckBits {
    mask: Block,
    value: Block,
}

impl StuckBits {
    /// Creates stuck-at info with no stuck cells for a `len`-bit region.
    pub fn none(len: usize) -> Self {
        StuckBits {
            mask: Block::zeros(len),
            value: Block::zeros(len),
        }
    }

    /// Creates stuck-at info from an explicit mask and value block.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks have different lengths.
    pub fn new(mask: Block, value: Block) -> Self {
        assert_eq!(mask.len(), value.len(), "mask/value length mismatch");
        StuckBits { mask, value }
    }

    /// Length of the region in bits.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Returns `true` if the region has zero length (never happens for
    /// well-formed contexts; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Marks bit `idx` as stuck at `value`.
    pub fn stick_bit(&mut self, idx: usize, value: bool) {
        self.mask.set_bit(idx, true);
        self.value.set_bit(idx, value);
    }

    /// Marks the whole `bits_per_cell`-wide cell containing bit `idx` as
    /// stuck at the given symbol value.
    pub fn stick_cell(&mut self, cell_idx: usize, bits_per_cell: usize, symbol: u64) {
        for b in 0..bits_per_cell {
            let idx = cell_idx * bits_per_cell + b;
            self.mask.set_bit(idx, true);
            self.value.set_bit(idx, (symbol >> b) & 1 == 1);
        }
    }

    /// Whether bit `idx` is stuck.
    pub fn is_stuck(&self, idx: usize) -> bool {
        self.mask.bit(idx)
    }

    /// Number of stuck bits in the region.
    pub fn stuck_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// The stuck mask as a block.
    pub fn mask(&self) -> &Block {
        &self.mask
    }

    /// The stuck values as a block.
    pub fn value(&self) -> &Block {
        &self.value
    }

    /// Extracts the stuck mask bits for `width` bits starting at `start`.
    pub fn mask_bits(&self, start: usize, width: usize) -> u64 {
        self.mask.extract(start, width)
    }

    /// Extracts the stuck values for `width` bits starting at `start`.
    pub fn value_bits(&self, start: usize, width: usize) -> u64 {
        self.value.extract(start, width)
    }

    /// Applies the stuck cells to `data`: stuck positions take their frozen
    /// value. This is what the memory array will actually hold after a write
    /// of `data`.
    pub fn apply_to(&self, data: &Block) -> Block {
        let mut out = data.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the stuck cells to `data` in place (word-wise): stuck
    /// positions take their frozen value.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_in_place(&self, data: &mut Block) {
        assert_eq!(data.len(), self.len(), "data/stuck length mismatch");
        for ((d, m), v) in data
            .words_mut()
            .iter_mut()
            .zip(self.mask.words())
            .zip(self.value.words())
        {
            *d = (*d & !m) | (v & m);
        }
    }

    /// Counts stuck-at-wrong bits if `data` were written.
    pub fn saw_count(&self, data: &Block) -> u32 {
        assert_eq!(data.len(), self.len(), "data/stuck length mismatch");
        let mut saw = 0;
        for (w, ((d, m), v)) in data
            .words()
            .iter()
            .zip(self.mask.words())
            .zip(self.value.words())
            .enumerate()
        {
            let _ = w;
            saw += ((d ^ v) & m).count_ones();
        }
        saw
    }
}

/// Everything an encoder knows about the destination of a write.
#[derive(Debug, Clone)]
pub struct WriteContext {
    /// Current contents of the data cells (read before writing).
    pub old_data: Block,
    /// Current contents of the auxiliary cells (coset index, flip flags, …).
    pub old_aux: u64,
    /// Number of auxiliary bits the destination row provides for this block.
    pub aux_bits: u32,
    /// Stuck-at state of the data cells.
    pub stuck: StuckBits,
    /// Stuck mask of the auxiliary cells.
    pub stuck_aux_mask: u64,
    /// Stuck values of the auxiliary cells.
    pub stuck_aux_value: u64,
}

impl WriteContext {
    /// A pristine context: the destination currently stores `old_data`,
    /// provides `aux_bits` auxiliary bits currently holding `old_aux`, and
    /// has no stuck cells.
    pub fn new(old_data: Block, old_aux: u64, aux_bits: u32) -> Self {
        let len = old_data.len();
        WriteContext {
            old_data,
            old_aux,
            aux_bits,
            stuck: StuckBits::none(len),
            stuck_aux_mask: 0,
            stuck_aux_value: 0,
        }
    }

    /// A context whose destination is all zeros with no stuck cells — the
    /// simplified setting of the paper's Figure 3 example.
    pub fn blank(len: usize, aux_bits: u32) -> Self {
        Self::new(Block::zeros(len), 0, aux_bits)
    }

    /// Replaces the stuck-at information for the data cells.
    ///
    /// # Panics
    ///
    /// Panics if the stuck region length differs from the data length.
    pub fn with_stuck(mut self, stuck: StuckBits) -> Self {
        assert_eq!(
            stuck.len(),
            self.old_data.len(),
            "stuck region must match data length"
        );
        self.stuck = stuck;
        self
    }

    /// Sets the stuck-at state of the auxiliary cells.
    pub fn with_stuck_aux(mut self, mask: u64, value: u64) -> Self {
        self.stuck_aux_mask = mask;
        self.stuck_aux_value = value;
        self
    }

    /// Length of the data block in bits.
    pub fn data_bits(&self) -> usize {
        self.old_data.len()
    }

    /// Costs writing `candidate` (data portion only) into this destination.
    pub fn data_cost(&self, cf: &dyn CostFunction, candidate: &Block) -> Cost {
        assert_eq!(candidate.len(), self.old_data.len(), "candidate length");
        cf.region_cost(
            candidate.words(),
            self.old_data.words(),
            self.stuck.mask().words(),
            self.stuck.value().words(),
            candidate.len(),
        )
    }

    /// Costs a sub-range of a candidate against the same range of the
    /// destination. `width <= 64`.
    pub fn range_cost(
        &self,
        cf: &dyn CostFunction,
        new_bits: u64,
        start: usize,
        width: usize,
    ) -> Cost {
        cf.field_cost(&Field {
            new: new_bits,
            old: self.old_data.extract(start, width),
            stuck_mask: self.stuck.mask_bits(start, width),
            stuck_value: self.stuck.value_bits(start, width),
            bits: width as u32,
        })
    }

    /// Costs writing `aux` into the auxiliary cells.
    pub fn aux_cost(&self, cf: &dyn CostFunction, aux: u64) -> Cost {
        if self.aux_bits == 0 {
            return Cost::ZERO;
        }
        // MLC cost functions need whole symbols; pad odd aux widths to the
        // next even width (the extra bit is always zero on both sides).
        let bits = if self.aux_bits % 2 == 1 {
            self.aux_bits + 1
        } else {
            self.aux_bits
        };
        cf.field_cost(&Field {
            new: aux,
            old: self.old_aux,
            stuck_mask: self.stuck_aux_mask,
            stuck_value: self.stuck_aux_value,
            bits,
        })
    }

    /// Total stuck-at-wrong count if `candidate` + `aux` were written.
    pub fn total_saw(&self, candidate: &Block, aux: u64) -> u32 {
        let data_saw = self.stuck.saw_count(candidate);
        let aux_mask = if self.aux_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.aux_bits) - 1
        };
        let aux_saw = ((aux ^ self.stuck_aux_value) & self.stuck_aux_mask & aux_mask).count_ones();
        data_saw + aux_saw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount, SawCount};

    #[test]
    fn stuck_bits_basics() {
        let mut s = StuckBits::none(8);
        assert_eq!(s.stuck_count(), 0);
        s.stick_bit(3, true);
        s.stick_bit(5, false);
        assert!(s.is_stuck(3));
        assert!(!s.is_stuck(0));
        assert_eq!(s.stuck_count(), 2);
        assert_eq!(s.mask_bits(0, 8), 0b0010_1000);
        assert_eq!(s.value_bits(0, 8), 0b0000_1000);
    }

    #[test]
    fn stick_cell_freezes_both_bits() {
        let mut s = StuckBits::none(8);
        s.stick_cell(1, 2, 0b10);
        assert!(s.is_stuck(2));
        assert!(s.is_stuck(3));
        assert_eq!(s.value_bits(2, 2), 0b10);
    }

    #[test]
    fn apply_and_saw_count() {
        let mut s = StuckBits::none(4);
        s.stick_bit(0, true);
        s.stick_bit(2, false);
        let data = Block::from_u64(0b0101, 4);
        // Bit 0: write 1, stuck at 1 -> ok. Bit 2: write 1, stuck at 0 -> SAW.
        assert_eq!(s.saw_count(&data), 1);
        let stored = s.apply_to(&data);
        assert_eq!(stored.as_u64(), 0b0001);
    }

    #[test]
    fn context_costs() {
        let ctx = WriteContext::new(Block::from_u64(0b0000, 4), 0b0, 2);
        let cand = Block::from_u64(0b0110, 4);
        assert_eq!(ctx.data_cost(&BitFlips, &cand).primary, 2.0);
        assert_eq!(ctx.data_cost(&OnesCount, &cand).primary, 2.0);
        assert_eq!(ctx.aux_cost(&OnesCount, 0b11).primary, 2.0);
        assert_eq!(ctx.range_cost(&OnesCount, 0b1, 0, 2).primary, 1.0);
    }

    #[test]
    fn context_saw_includes_aux() {
        let mut stuck = StuckBits::none(4);
        stuck.stick_bit(1, false);
        let ctx = WriteContext::new(Block::zeros(4), 0, 3)
            .with_stuck(stuck)
            .with_stuck_aux(0b100, 0b000);
        let cand = Block::from_u64(0b0010, 4); // writes 1 into stuck-at-0 bit
        assert_eq!(ctx.total_saw(&cand, 0b100), 2); // plus aux bit 2 stuck at 0
        assert_eq!(ctx.data_cost(&SawCount, &cand).primary, 1.0);
    }

    #[test]
    fn blank_context_is_zeroed() {
        let ctx = WriteContext::blank(64, 6);
        assert_eq!(ctx.data_bits(), 64);
        assert_eq!(ctx.old_data.count_ones(), 0);
        assert_eq!(ctx.old_aux, 0);
        assert_eq!(ctx.stuck.stuck_count(), 0);
    }
}
