//! The memory-side context an encoder sees when servicing a write.
//!
//! Coset encoding is a read-modify-write scheme (Section II-C): before
//! writing, the controller reads the current contents of the target word and
//! consults the fault repository for known stuck cells. [`WriteContext`]
//! bundles that information for the encoders, and [`StuckBits`] describes
//! the stuck-at state of a bit range.

use crate::block::Block;
use crate::cost::{ClassSet, Cost, CostFunction, Field, FixedCost};

/// Stuck-at information for a block-sized region of memory.
///
/// Bit `i` of `mask` is `1` when the cell storing bit `i` can no longer be
/// programmed; `value` then records the value it is frozen at. For MLC
/// memories a stuck cell freezes both of its bits, so the mask always covers
/// whole symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckBits {
    mask: Block,
    value: Block,
}

impl StuckBits {
    /// Creates stuck-at info with no stuck cells for a `len`-bit region.
    pub fn none(len: usize) -> Self {
        StuckBits {
            mask: Block::zeros(len),
            value: Block::zeros(len),
        }
    }

    /// Creates stuck-at info from an explicit mask and value block.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks have different lengths.
    pub fn new(mask: Block, value: Block) -> Self {
        assert_eq!(mask.len(), value.len(), "mask/value length mismatch");
        StuckBits { mask, value }
    }

    /// Length of the region in bits.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Returns `true` if the region has zero length (never happens for
    /// well-formed contexts; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Marks bit `idx` as stuck at `value`.
    pub fn stick_bit(&mut self, idx: usize, value: bool) {
        self.mask.set_bit(idx, true);
        self.value.set_bit(idx, value);
    }

    /// Marks the whole `bits_per_cell`-wide cell containing bit `idx` as
    /// stuck at the given symbol value.
    pub fn stick_cell(&mut self, cell_idx: usize, bits_per_cell: usize, symbol: u64) {
        for b in 0..bits_per_cell {
            let idx = cell_idx * bits_per_cell + b;
            self.mask.set_bit(idx, true);
            self.value.set_bit(idx, (symbol >> b) & 1 == 1);
        }
    }

    /// Whether bit `idx` is stuck.
    pub fn is_stuck(&self, idx: usize) -> bool {
        self.mask.bit(idx)
    }

    /// Number of stuck bits in the region.
    pub fn stuck_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// The stuck mask as a block.
    pub fn mask(&self) -> &Block {
        &self.mask
    }

    /// The stuck values as a block.
    pub fn value(&self) -> &Block {
        &self.value
    }

    /// Extracts the stuck mask bits for `width` bits starting at `start`.
    pub fn mask_bits(&self, start: usize, width: usize) -> u64 {
        self.mask.extract(start, width)
    }

    /// Extracts the stuck values for `width` bits starting at `start`.
    pub fn value_bits(&self, start: usize, width: usize) -> u64 {
        self.value.extract(start, width)
    }

    /// Applies the stuck cells to `data`: stuck positions take their frozen
    /// value. This is what the memory array will actually hold after a write
    /// of `data`.
    pub fn apply_to(&self, data: &Block) -> Block {
        let mut out = data.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the stuck cells to `data` in place (word-wise): stuck
    /// positions take their frozen value.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_in_place(&self, data: &mut Block) {
        assert_eq!(data.len(), self.len(), "data/stuck length mismatch");
        for ((d, m), v) in data
            .words_mut()
            .iter_mut()
            .zip(self.mask.words())
            .zip(self.value.words())
        {
            *d = (*d & !m) | (v & m);
        }
    }

    /// Counts stuck-at-wrong bits if `data` were written.
    pub fn saw_count(&self, data: &Block) -> u32 {
        assert_eq!(data.len(), self.len(), "data/stuck length mismatch");
        let mut saw = 0;
        for (w, ((d, m), v)) in data
            .words()
            .iter()
            .zip(self.mask.words())
            .zip(self.value.words())
            .enumerate()
        {
            let _ = w;
            saw += ((d ^ v) & m).count_ones();
        }
        saw
    }
}

/// Everything an encoder knows about the destination of a write.
#[derive(Debug, Clone)]
pub struct WriteContext {
    /// Current contents of the data cells (read before writing).
    pub old_data: Block,
    /// Current contents of the auxiliary cells (coset index, flip flags, …).
    pub old_aux: u64,
    /// Number of auxiliary bits the destination row provides for this block.
    pub aux_bits: u32,
    /// Stuck-at state of the data cells.
    pub stuck: StuckBits,
    /// Stuck mask of the auxiliary cells.
    pub stuck_aux_mask: u64,
    /// Stuck values of the auxiliary cells.
    pub stuck_aux_value: u64,
}

impl WriteContext {
    /// A pristine context: the destination currently stores `old_data`,
    /// provides `aux_bits` auxiliary bits currently holding `old_aux`, and
    /// has no stuck cells.
    pub fn new(old_data: Block, old_aux: u64, aux_bits: u32) -> Self {
        let len = old_data.len();
        WriteContext {
            old_data,
            old_aux,
            aux_bits,
            stuck: StuckBits::none(len),
            stuck_aux_mask: 0,
            stuck_aux_value: 0,
        }
    }

    /// A context whose destination is all zeros with no stuck cells — the
    /// simplified setting of the paper's Figure 3 example.
    pub fn blank(len: usize, aux_bits: u32) -> Self {
        Self::new(Block::zeros(len), 0, aux_bits)
    }

    /// Replaces the stuck-at information for the data cells.
    ///
    /// # Panics
    ///
    /// Panics if the stuck region length differs from the data length.
    pub fn with_stuck(mut self, stuck: StuckBits) -> Self {
        assert_eq!(
            stuck.len(),
            self.old_data.len(),
            "stuck region must match data length"
        );
        self.stuck = stuck;
        self
    }

    /// Sets the stuck-at state of the auxiliary cells.
    pub fn with_stuck_aux(mut self, mask: u64, value: u64) -> Self {
        self.stuck_aux_mask = mask;
        self.stuck_aux_value = value;
        self
    }

    /// Length of the data block in bits.
    pub fn data_bits(&self) -> usize {
        self.old_data.len()
    }

    /// Costs writing `candidate` (data portion only) into this destination.
    ///
    /// Stays on the scalar per-field route: for a one-off region cost the
    /// class-compilation overhead of [`CostFunction::cost_words`] outweighs
    /// its SWAR win — encoders that evaluate many candidates build a
    /// [`CostModel`] once via [`WriteContext::cost_model`] instead.
    pub fn data_cost(&self, cf: &dyn CostFunction, candidate: &Block) -> Cost {
        assert_eq!(candidate.len(), self.old_data.len(), "candidate length");
        cf.region_cost(
            candidate.words(),
            self.old_data.words(),
            self.stuck.mask().words(),
            self.stuck.value().words(),
            candidate.len(),
        )
    }

    /// Costs a sub-range of a candidate against the same range of the
    /// destination. `width <= 64`.
    pub fn range_cost(
        &self,
        cf: &dyn CostFunction,
        new_bits: u64,
        start: usize,
        width: usize,
    ) -> Cost {
        cf.field_cost(&Field {
            new: new_bits,
            old: self.old_data.extract(start, width),
            stuck_mask: self.stuck.mask_bits(start, width),
            stuck_value: self.stuck.value_bits(start, width),
            bits: width as u32,
        })
    }

    /// Costs writing `aux` into the auxiliary cells.
    pub fn aux_cost(&self, cf: &dyn CostFunction, aux: u64) -> Cost {
        if self.aux_bits == 0 {
            return Cost::ZERO;
        }
        // MLC cost functions need whole symbols; pad odd aux widths to the
        // next even width (the extra bit is always zero on both sides).
        let bits = if self.aux_bits % 2 == 1 {
            self.aux_bits + 1
        } else {
            self.aux_bits
        };
        cf.field_cost(&Field {
            new: aux,
            old: self.old_aux,
            stuck_mask: self.stuck_aux_mask,
            stuck_value: self.stuck_aux_value,
            bits,
        })
    }

    /// Materializes the per-write broadcast-SWAR cost engine for this
    /// destination, or `None` when `cf` admits no word-batched integer
    /// path (see [`CostFunction::classes`]) — callers then run their scalar
    /// fallback.
    pub fn cost_model<'a>(&'a self, cf: &dyn CostFunction) -> Option<CostModel<'a>> {
        let classes = cf.classes()?;
        // MLC classes fold per-cell flags onto even bit positions: the data
        // region must be a whole number of cells for the planes (and the
        // scalar path's own assertion) to line up.
        if !self
            .data_bits()
            .is_multiple_of(classes.cell_bits() as usize)
        {
            return None;
        }
        let aux_bits = if self.aux_bits % 2 == 1 {
            self.aux_bits + 1
        } else {
            self.aux_bits
        };
        let aux_mask = if aux_bits == 0 {
            0
        } else if aux_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << aux_bits) - 1
        };
        Some(CostModel {
            classes,
            old: self.old_data.words(),
            stuck_mask: self.stuck.mask().words(),
            stuck_value: self.stuck.value().words(),
            bits: self.data_bits(),
            aux_old: self.old_aux,
            aux_stuck_mask: self.stuck_aux_mask,
            aux_stuck_value: self.stuck_aux_value,
            aux_mask,
        })
    }

    /// Total stuck-at-wrong count if `candidate` + `aux` were written.
    pub fn total_saw(&self, candidate: &Block, aux: u64) -> u32 {
        let data_saw = self.stuck.saw_count(candidate);
        let aux_mask = if self.aux_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.aux_bits) - 1
        };
        let aux_saw = ((aux ^ self.stuck_aux_value) & self.stuck_aux_mask & aux_mask).count_ones();
        data_saw + aux_saw
    }
}

/// The per-write broadcast-SWAR cost engine: destination bit-planes
/// borrowed from a [`WriteContext`] plus the objective's compiled
/// transition classes ([`ClassSet`]).
///
/// Materialized once per write by [`WriteContext::cost_model`], then driven
/// by the encoders' hot loops: whole candidate words are costed with a
/// handful of masked popcounts per transition class
/// ([`CostModel::word_cost`]), and VCC/FNW-style per-partition selection
/// derives the class planes once per candidate word
/// ([`CostModel::planes`]) and pops each partition mask out of them
/// ([`CostModel::plane_cost`]) — evaluating all partitions of a block as
/// parallel bit operations, the way the paper's VCC hardware evaluates all
/// partitions and both complement forms at once.
///
/// Costs accumulate in fixed-point [`FixedCost`] and compare via
/// [`FixedCost::packed`]; `f64` appears only at the [`crate::Encoded`]
/// boundary. All built-in class costs are integers (counts or integer-pJ
/// Table I energies), so results are bit-identical to the scalar path.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    classes: ClassSet,
    old: &'a [u64],
    stuck_mask: &'a [u64],
    stuck_value: &'a [u64],
    bits: usize,
    aux_old: u64,
    aux_stuck_mask: u64,
    aux_stuck_value: u64,
    aux_mask: u64,
}

impl CostModel<'_> {
    /// The compiled transition classes.
    pub fn classes(&self) -> &ClassSet {
        &self.classes
    }

    /// Width of the modeled data region in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of backing words of the data region.
    pub fn word_count(&self) -> usize {
        self.old.len()
    }

    /// Mask of significant bits in word `w` (all ones except the tail).
    #[inline(always)]
    pub fn word_mask(&self, w: usize) -> u64 {
        let rem = self.bits - (w * 64).min(self.bits);
        if rem >= 64 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Class planes for writing `new` over word `w` of the destination,
    /// covering the word's significant bits.
    #[inline(always)]
    pub fn planes(&self, w: usize, new: u64) -> [u64; ClassSet::MAX] {
        self.classes.planes(
            new,
            self.old[w],
            self.stuck_mask[w],
            self.stuck_value[w],
            self.word_mask(w),
        )
    }

    /// Cost of precomputed planes restricted to `mask` (a partition of the
    /// word the planes were derived for). For MLC classes the mask must
    /// cover whole symbols.
    #[inline(always)]
    pub fn plane_cost(&self, planes: &[u64; ClassSet::MAX], mask: u64) -> FixedCost {
        self.classes.plane_cost(planes, mask)
    }

    /// Fused class planes for a candidate word and its complement form
    /// `new ^ cmask` over word `w` (see [`ClassSet::planes_pair`]).
    #[inline(always)]
    pub fn planes_pair(
        &self,
        w: usize,
        new: u64,
        cmask: u64,
    ) -> ([u64; ClassSet::MAX], [u64; ClassSet::MAX]) {
        self.classes.planes_pair(
            new,
            cmask,
            self.old[w],
            self.stuck_mask[w],
            self.stuck_value[w],
            self.word_mask(w),
        )
    }

    /// Whether weighted per-field cost words fit `field_bits`-wide fields
    /// (see [`ClassSet::weighted_fields_fit`]).
    pub fn weighted_fields_fit(&self, field_bits: usize) -> bool {
        self.classes.weighted_fields_fit(field_bits)
    }

    /// Weighted per-field cost words from per-field counts (see
    /// [`ClassSet::weighted_fields`]).
    #[inline(always)]
    pub fn weighted_fields(&self, counts: &[u64; ClassSet::MAX]) -> (u64, u64) {
        self.classes.weighted_fields(counts)
    }

    /// Per-partition popcounts of precomputed planes
    /// ([`ClassSet::field_counts`]); `field_bits` must be a power of two.
    #[inline(always)]
    pub fn field_counts(
        &self,
        planes: &[u64; ClassSet::MAX],
        field_bits: usize,
    ) -> [u64; ClassSet::MAX] {
        self.classes.field_counts(planes, field_bits)
    }

    /// Cost of one partition out of precomputed
    /// [`CostModel::field_counts`] (see [`ClassSet::count_cost`]).
    #[inline(always)]
    pub fn count_cost(
        &self,
        counts: &[u64; ClassSet::MAX],
        shift: usize,
        field_mask: u64,
    ) -> FixedCost {
        self.classes.count_cost(counts, shift, field_mask)
    }

    /// Cost of writing `new` over word `w`, restricted to `mask`.
    #[inline(always)]
    pub fn word_cost_masked(&self, w: usize, new: u64, mask: u64) -> FixedCost {
        self.classes.cost(
            new,
            self.old[w],
            self.stuck_mask[w],
            self.stuck_value[w],
            mask & self.word_mask(w),
        )
    }

    /// Cost of writing `new` over the whole of word `w`.
    #[inline(always)]
    pub fn word_cost(&self, w: usize, new: u64) -> FixedCost {
        self.word_cost_masked(w, new, u64::MAX)
    }

    /// Cost of writing `aux` into the auxiliary cells (the fixed-point
    /// mirror of [`WriteContext::aux_cost`], including the odd-width
    /// padding).
    #[inline(always)]
    pub fn aux_cost(&self, aux: u64) -> FixedCost {
        if self.aux_mask == 0 {
            return FixedCost::ZERO;
        }
        self.classes.cost(
            aux,
            self.aux_old,
            self.aux_stuck_mask,
            self.aux_stuck_value,
            self.aux_mask,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount, SawCount};

    #[test]
    fn stuck_bits_basics() {
        let mut s = StuckBits::none(8);
        assert_eq!(s.stuck_count(), 0);
        s.stick_bit(3, true);
        s.stick_bit(5, false);
        assert!(s.is_stuck(3));
        assert!(!s.is_stuck(0));
        assert_eq!(s.stuck_count(), 2);
        assert_eq!(s.mask_bits(0, 8), 0b0010_1000);
        assert_eq!(s.value_bits(0, 8), 0b0000_1000);
    }

    #[test]
    fn stick_cell_freezes_both_bits() {
        let mut s = StuckBits::none(8);
        s.stick_cell(1, 2, 0b10);
        assert!(s.is_stuck(2));
        assert!(s.is_stuck(3));
        assert_eq!(s.value_bits(2, 2), 0b10);
    }

    #[test]
    fn apply_and_saw_count() {
        let mut s = StuckBits::none(4);
        s.stick_bit(0, true);
        s.stick_bit(2, false);
        let data = Block::from_u64(0b0101, 4);
        // Bit 0: write 1, stuck at 1 -> ok. Bit 2: write 1, stuck at 0 -> SAW.
        assert_eq!(s.saw_count(&data), 1);
        let stored = s.apply_to(&data);
        assert_eq!(stored.as_u64(), 0b0001);
    }

    #[test]
    fn context_costs() {
        let ctx = WriteContext::new(Block::from_u64(0b0000, 4), 0b0, 2);
        let cand = Block::from_u64(0b0110, 4);
        assert_eq!(ctx.data_cost(&BitFlips, &cand).primary, 2.0);
        assert_eq!(ctx.data_cost(&OnesCount, &cand).primary, 2.0);
        assert_eq!(ctx.aux_cost(&OnesCount, 0b11).primary, 2.0);
        assert_eq!(ctx.range_cost(&OnesCount, 0b1, 0, 2).primary, 1.0);
    }

    #[test]
    fn context_saw_includes_aux() {
        let mut stuck = StuckBits::none(4);
        stuck.stick_bit(1, false);
        let ctx = WriteContext::new(Block::zeros(4), 0, 3)
            .with_stuck(stuck)
            .with_stuck_aux(0b100, 0b000);
        let cand = Block::from_u64(0b0010, 4); // writes 1 into stuck-at-0 bit
        assert_eq!(ctx.total_saw(&cand, 0b100), 2); // plus aux bit 2 stuck at 0
        assert_eq!(ctx.data_cost(&SawCount, &cand).primary, 1.0);
    }

    #[test]
    fn cost_model_matches_scalar_costs() {
        use crate::cost::{opt_saw_then_energy, WriteEnergy};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let old = Block::random(&mut rng, 64);
            let mut stuck = StuckBits::none(64);
            for cell in 0..32 {
                if rng.gen_bool(0.05) {
                    stuck.stick_cell(cell, 2, rng.gen_range(0..4u64));
                }
            }
            let ctx = WriteContext::new(old, rng.gen::<u64>() & 0xFF, 8)
                .with_stuck(stuck)
                .with_stuck_aux(rng.gen::<u64>() & 0x3C, rng.gen::<u64>() & 0xFF);
            for cf in [
                Box::new(WriteEnergy::mlc()) as Box<dyn CostFunction>,
                Box::new(opt_saw_then_energy()),
            ] {
                let model = ctx.cost_model(cf.as_ref()).expect("classes available");
                let cand = rng.gen::<u64>();
                let cand_block = Block::from_u64(cand, 64);
                assert_eq!(
                    model.word_cost(0, cand).to_cost(),
                    ctx.data_cost(cf.as_ref(), &cand_block),
                    "word cost diverged for {}",
                    cf.name()
                );
                let aux = rng.gen::<u64>() & 0xFF;
                assert_eq!(
                    model.aux_cost(aux).to_cost(),
                    ctx.aux_cost(cf.as_ref(), aux),
                    "aux cost diverged for {}",
                    cf.name()
                );
            }
        }
    }

    #[test]
    fn cost_model_declines_odd_mlc_regions_and_scalar_only() {
        use crate::cost::{ScalarOnly, WriteEnergy};
        let ctx = WriteContext::blank(63, 0);
        assert!(ctx.cost_model(&WriteEnergy::mlc()).is_none());
        assert!(ctx.cost_model(&crate::cost::OnesCount).is_some());
        let ctx = WriteContext::blank(64, 0);
        assert!(ctx.cost_model(&ScalarOnly(WriteEnergy::mlc())).is_none());
    }

    #[test]
    fn blank_context_is_zeroed() {
        let ctx = WriteContext::blank(64, 6);
        assert_eq!(ctx.data_bits(), 64);
        assert_eq!(ctx.old_data.count_ones(), 0);
        assert_eq!(ctx.old_aux, 0);
        assert_eq!(ctx.stuck.stuck_count(), 0);
    }
}
