//! Cost functions driving coset candidate selection.
//!
//! Every encoder in this crate evaluates candidate codewords with a
//! [`CostFunction`] and keeps the cheapest one. The paper uses several
//! objectives, all reproduced here:
//!
//! * number of written `1`s (the worked example of Figure 3),
//! * number of bit flips relative to the data already in the row
//!   (Flip-N-Write-style, Section II-C),
//! * MLC/SLC write energy using the Table I transition energies,
//! * number of stuck-at-wrong (SAW) cells, i.e. stuck cells whose stored
//!   value differs from the value being written,
//! * lexicographic combinations (SAW-first-then-energy and
//!   energy-first-then-SAW, Section VI-A).
//!
//! Cost functions operate on `u64`-sized *fields*: a field is at most 64
//! bits of new data, the old data occupying those cells, and the stuck-at
//! state of those cells. Blocks wider than 64 bits are costed by summing
//! their 64-bit words; partitions narrower than 64 bits (VCC kernels) are
//! costed directly. MLC symbols are two adjacent bits, so fields must hold
//! an even number of bits when an MLC energy model is used.

use std::fmt;
use std::ops::Add;

use crate::symbol::CellKind;

/// A candidate cost. Ordering is lexicographic: `primary` dominates,
/// `secondary` breaks ties. Plain single-objective cost functions put their
/// value in `primary` and leave `secondary` at zero.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cost {
    /// Dominant component of the objective.
    pub primary: f64,
    /// Tie-breaking component of the objective.
    pub secondary: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        primary: 0.0,
        secondary: 0.0,
    };

    /// Creates a single-objective cost.
    pub fn new(primary: f64) -> Self {
        Cost {
            primary,
            secondary: 0.0,
        }
    }

    /// Creates a two-level lexicographic cost.
    pub fn with_secondary(primary: f64, secondary: f64) -> Self {
        Cost { primary, secondary }
    }

    /// Returns `true` if `self` is strictly cheaper than `other`
    /// (lexicographic comparison, NaN treated as most expensive).
    pub fn is_better_than(&self, other: &Cost) -> bool {
        match self.primary.total_cmp(&other.primary) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                self.secondary.total_cmp(&other.secondary) == std::cmp::Ordering::Less
            }
        }
    }
}

impl Default for Cost {
    fn default() -> Self {
        Cost::ZERO
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            primary: self.primary + rhs.primary,
            secondary: self.secondary + rhs.secondary,
        }
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(
            self.primary
                .total_cmp(&other.primary)
                .then(self.secondary.total_cmp(&other.secondary)),
        )
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.secondary == 0.0 {
            write!(f, "{:.4}", self.primary)
        } else {
            write!(f, "({:.4}, {:.4})", self.primary, self.secondary)
        }
    }
}

/// One costing unit: up to 64 bits of candidate data plus the memory state
/// it would overwrite.
#[derive(Debug, Clone, Copy)]
pub struct Field {
    /// Candidate bits to be written (low `bits` bits are significant).
    pub new: u64,
    /// Bits currently stored in the target cells.
    pub old: u64,
    /// Mask of cells that are stuck (1 = stuck). For MLC, both bits of a
    /// stuck cell are expected to be set in the mask.
    pub stuck_mask: u64,
    /// The values the stuck cells are frozen at (only meaningful where
    /// `stuck_mask` is set).
    pub stuck_value: u64,
    /// Number of significant bits (1..=64).
    pub bits: u32,
}

impl Field {
    /// Constructs a field with no stuck cells.
    pub fn new(new: u64, old: u64, bits: u32) -> Self {
        Field {
            new,
            old,
            stuck_mask: 0,
            stuck_value: 0,
            bits,
        }
    }

    /// Mask covering the significant bits of this field.
    #[inline]
    pub fn bit_mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// The data that will actually end up stored: stuck cells keep their
    /// frozen value, everything else takes the new value.
    #[inline]
    pub fn effective_stored(&self) -> u64 {
        ((self.new & !self.stuck_mask) | (self.stuck_value & self.stuck_mask)) & self.bit_mask()
    }

    /// Number of stuck-at-wrong bits: stuck cells whose frozen value differs
    /// from the value being written.
    #[inline]
    pub fn saw_bits(&self) -> u32 {
        ((self.new ^ self.stuck_value) & self.stuck_mask & self.bit_mask()).count_ones()
    }
}

/// Objective evaluated for every candidate codeword.
///
/// Implementations must be pure functions of the field contents so that the
/// encoder may evaluate partitions independently and in any order.
pub trait CostFunction: Send + Sync {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Cost of writing one field.
    fn field_cost(&self, field: &Field) -> Cost;

    /// Cost of writing a multi-word region described by parallel slices.
    ///
    /// `bits` is the total number of significant bits; slices must contain
    /// `ceil(bits / 64)` words.
    fn region_cost(
        &self,
        new: &[u64],
        old: &[u64],
        stuck_mask: &[u64],
        stuck_value: &[u64],
        bits: usize,
    ) -> Cost {
        let words = bits.div_ceil(64);
        assert!(new.len() >= words && old.len() >= words);
        assert!(stuck_mask.len() >= words && stuck_value.len() >= words);
        let mut total = Cost::ZERO;
        let mut remaining = bits;
        for w in 0..words {
            let b = remaining.min(64) as u32;
            total = total
                + self.field_cost(&Field {
                    new: new[w],
                    old: old[w],
                    stuck_mask: stuck_mask[w],
                    stuck_value: stuck_value[w],
                    bits: b,
                });
            remaining -= b as usize;
        }
        total
    }
}

/// Counts the `1` bits written (the paper's Figure 3 objective).
///
/// Writing more `1`s (SET pulses toward intermediate states in MLC) is the
/// expensive direction, so minimizing ones is a simple proxy for energy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnesCount;

impl CostFunction for OnesCount {
    fn name(&self) -> &str {
        "ones"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new((field.new & field.bit_mask()).count_ones() as f64)
    }
}

/// Counts bits that differ from the data already stored (Flip-N-Write /
/// differential-write objective).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitFlips;

impl CostFunction for BitFlips {
    fn name(&self) -> &str {
        "bit-flips"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new(((field.new ^ field.old) & field.bit_mask()).count_ones() as f64)
    }
}

/// Counts stuck-at-wrong cells only.
#[derive(Debug, Clone, Copy, Default)]
pub struct SawCount;

impl CostFunction for SawCount {
    fn name(&self) -> &str {
        "saw"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new(field.saw_bits() as f64)
    }
}

/// Per-transition write energies for a memory cell, in picojoules.
///
/// For MLC the matrix is indexed `[old_symbol][new_symbol]` over the four
/// Gray-coded symbols `00, 01, 11, 10` (using the symbol's numeric value as
/// the index). For SLC it is indexed `[old_bit][new_bit]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransitionEnergy {
    kind: CellKind,
    /// `energy[old][new]` in picojoules.
    table: [[f64; 4]; 4],
}

/// Energy of a low-cost MLC transition (full SET or RESET toward an extreme
/// Gray level whose right digit is `0`), in pJ. Calibrated to the prototype
/// MLC PCM of Bedeschi et al. / Wang et al. used by the paper: intermediate
/// levels cost roughly an order of magnitude more than the extremes.
pub const MLC_LOW_TRANSITION_PJ: f64 = 13.0;

/// Energy of a high-cost MLC transition (program-and-verify into an
/// intermediate level whose right digit is `1`), in pJ.
pub const MLC_HIGH_TRANSITION_PJ: f64 = 132.0;

/// Energy of flipping an SLC cell (single SET or RESET pulse), in pJ.
pub const SLC_TRANSITION_PJ: f64 = 13.0;

impl TransitionEnergy {
    /// The paper's Table I energy model for 2-bit MLC PCM: any transition
    /// into a symbol whose right digit is `1` is high energy, any transition
    /// into a symbol whose right digit is `0` is low energy, and rewriting
    /// the same symbol is free (differential write skips it).
    pub fn mlc_table_i() -> Self {
        let mut table = [[0.0f64; 4]; 4];
        for (old, row) in table.iter_mut().enumerate() {
            for (new, e) in row.iter_mut().enumerate() {
                *e = if old == new {
                    0.0
                } else if new & 1 == 1 {
                    MLC_HIGH_TRANSITION_PJ
                } else {
                    MLC_LOW_TRANSITION_PJ
                };
            }
        }
        TransitionEnergy {
            kind: CellKind::Mlc,
            table,
        }
    }

    /// A symmetric SLC energy model: any bit flip costs
    /// [`SLC_TRANSITION_PJ`], rewrites are free.
    pub fn slc_symmetric() -> Self {
        let mut table = [[0.0f64; 4]; 4];
        table[0][1] = SLC_TRANSITION_PJ;
        table[1][0] = SLC_TRANSITION_PJ;
        TransitionEnergy {
            kind: CellKind::Slc,
            table,
        }
    }

    /// Builds a custom MLC table. `table[old][new]` is indexed by symbol
    /// value (0..4).
    pub fn custom_mlc(table: [[f64; 4]; 4]) -> Self {
        TransitionEnergy {
            kind: CellKind::Mlc,
            table,
        }
    }

    /// Builds a custom SLC table from a 2x2 matrix.
    pub fn custom_slc(table: [[f64; 2]; 2]) -> Self {
        let mut full = [[0.0f64; 4]; 4];
        for old in 0..2 {
            for new in 0..2 {
                full[old][new] = table[old][new];
            }
        }
        TransitionEnergy {
            kind: CellKind::Slc,
            table: full,
        }
    }

    /// The cell kind this table describes.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Energy in pJ of programming a cell from `old` to `new`
    /// (symbol values for MLC, bit values for SLC).
    #[inline]
    pub fn energy(&self, old: u8, new: u8) -> f64 {
        self.table[old as usize][new as usize]
    }

    /// The largest single-cell transition energy in the table.
    pub fn max_energy(&self) -> f64 {
        self.table.iter().flatten().copied().fold(0.0f64, f64::max)
    }
}

impl Default for TransitionEnergy {
    fn default() -> Self {
        TransitionEnergy::mlc_table_i()
    }
}

/// Bit-parallel evaluation strategy for a [`WriteEnergy`] table, detected
/// once at construction. The encoder hot loop costs every candidate with
/// `field_cost`; for the two table shapes the paper actually uses, the whole
/// 64-bit field reduces to a handful of popcounts instead of a 32-iteration
/// per-cell loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FastEnergy {
    /// Table I shape: rewriting a symbol is free, any change into a symbol
    /// with right digit `1` costs `high`, any other change costs `low`.
    MlcByRightDigit {
        /// Energy of a change into a right-digit-0 symbol.
        low: f64,
        /// Energy of a change into a right-digit-1 symbol.
        high: f64,
    },
    /// SLC with a free diagonal: a 0→1 flip costs `set`, 1→0 costs `reset`.
    SlcDiagonalZero {
        /// Energy of programming a `1`.
        set: f64,
        /// Energy of programming a `0`.
        reset: f64,
    },
}

/// Bit mask selecting the right (low) digit of every MLC symbol in a word.
const MLC_RIGHT_DIGITS: u64 = 0x5555_5555_5555_5555;

impl TransitionEnergy {
    /// Detects whether this table admits a bit-parallel cost evaluation.
    fn fast_kind(&self) -> Option<FastEnergy> {
        match self.kind {
            CellKind::Mlc => {
                let low = self.table[0][2];
                let high = self.table[0][1];
                for (old, row) in self.table.iter().enumerate() {
                    for (new, &actual) in row.iter().enumerate() {
                        let expect = if old == new {
                            0.0
                        } else if new & 1 == 1 {
                            high
                        } else {
                            low
                        };
                        if actual != expect {
                            return None;
                        }
                    }
                }
                Some(FastEnergy::MlcByRightDigit { low, high })
            }
            CellKind::Slc => {
                if self.table[0][0] == 0.0 && self.table[1][1] == 0.0 {
                    Some(FastEnergy::SlcDiagonalZero {
                        set: self.table[0][1],
                        reset: self.table[1][0],
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// Write energy objective using a [`TransitionEnergy`] table.
///
/// Stuck cells consume no programming energy (the write driver skips cells
/// the fault repository reports as failed), which matches the paper's
/// accounting where SAW cells are an error/reliability problem rather than
/// an energy one.
#[derive(Debug, Clone)]
pub struct WriteEnergy {
    energies: TransitionEnergy,
    fast: Option<FastEnergy>,
}

impl Default for WriteEnergy {
    /// The Table-I MLC objective, with fast-path detection — `fast` must
    /// always be derived from the table, so Default goes through [`new`].
    ///
    /// [`new`]: WriteEnergy::new
    fn default() -> Self {
        Self::new(TransitionEnergy::default())
    }
}

impl WriteEnergy {
    /// Creates an energy objective from a transition table.
    pub fn new(energies: TransitionEnergy) -> Self {
        let fast = energies.fast_kind();
        WriteEnergy { energies, fast }
    }

    /// The Table I MLC PCM energy objective.
    pub fn mlc() -> Self {
        Self::new(TransitionEnergy::mlc_table_i())
    }

    /// The symmetric SLC energy objective.
    pub fn slc() -> Self {
        Self::new(TransitionEnergy::slc_symmetric())
    }

    /// Access to the underlying transition table.
    pub fn energies(&self) -> &TransitionEnergy {
        &self.energies
    }

    /// Per-cell reference evaluation, used for arbitrary tables and as the
    /// oracle the bit-parallel fast path is tested against.
    fn field_cost_generic(&self, field: &Field) -> Cost {
        let bits_per_cell = self.energies.kind().bits_per_cell() as u32;
        let cells = field.bits / bits_per_cell;
        let cell_mask = (1u64 << bits_per_cell) - 1;
        let mut energy = 0.0;
        for c in 0..cells {
            let shift = c * bits_per_cell;
            let stuck = (field.stuck_mask >> shift) & cell_mask;
            if stuck != 0 {
                // Cell is (partially) stuck: the driver does not program it.
                continue;
            }
            let old = ((field.old >> shift) & cell_mask) as u8;
            let new = ((field.new >> shift) & cell_mask) as u8;
            energy += self.energies.energy(old, new);
        }
        Cost::new(energy)
    }
}

impl CostFunction for WriteEnergy {
    fn name(&self) -> &str {
        match self.energies.kind() {
            CellKind::Mlc => "write-energy-mlc",
            CellKind::Slc => "write-energy-slc",
        }
    }

    fn field_cost(&self, field: &Field) -> Cost {
        let bits_per_cell = self.energies.kind().bits_per_cell() as u32;
        assert!(
            field.bits.is_multiple_of(bits_per_cell),
            "field of {} bits is not a whole number of {}-bit cells",
            field.bits,
            bits_per_cell
        );
        match self.fast {
            Some(FastEnergy::MlcByRightDigit { low, high }) => {
                let mask = field.bit_mask();
                let new = field.new & mask;
                let diff = (field.new ^ field.old) & mask;
                // Per-cell flags folded onto the right-digit position.
                let right = MLC_RIGHT_DIGITS & mask;
                let changed = (diff | (diff >> 1)) & right;
                let stuck = ((field.stuck_mask | (field.stuck_mask >> 1)) & right) & mask;
                let programmed = changed & !stuck;
                let high_cells = (programmed & new).count_ones();
                let low_cells = (programmed & !new).count_ones();
                Cost::new(high_cells as f64 * high + low_cells as f64 * low)
            }
            Some(FastEnergy::SlcDiagonalZero { set, reset }) => {
                let mask = field.bit_mask();
                let programmed = (field.new ^ field.old) & !field.stuck_mask & mask;
                let sets = (programmed & field.new).count_ones();
                let resets = (programmed & !field.new).count_ones();
                Cost::new(sets as f64 * set + resets as f64 * reset)
            }
            None => self.field_cost_generic(field),
        }
    }
}

/// Lexicographic combination of two objectives: minimize `primary` first and
/// use `secondary` to break ties.
///
/// The paper's two evaluation modes are `Lexico::new(SawCount, WriteEnergy::mlc())`
/// ("Opt. SAW") and `Lexico::new(WriteEnergy::mlc(), SawCount)` ("Opt. Energy").
#[derive(Debug, Clone)]
pub struct Lexico<P, S> {
    primary: P,
    secondary: S,
    name: String,
}

impl<P: CostFunction, S: CostFunction> Lexico<P, S> {
    /// Combines two objectives lexicographically.
    pub fn new(primary: P, secondary: S) -> Self {
        let name = format!("{}-then-{}", primary.name(), secondary.name());
        Lexico {
            primary,
            secondary,
            name,
        }
    }
}

impl<P: CostFunction, S: CostFunction> CostFunction for Lexico<P, S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn field_cost(&self, field: &Field) -> Cost {
        let p = self.primary.field_cost(field);
        let s = self.secondary.field_cost(field);
        // Fold a two-level lexicographic cost: the secondary objective's own
        // secondary component is discarded (it is zero for all built-ins).
        Cost::with_secondary(p.primary, s.primary)
    }
}

/// Convenience constructor for the paper's "Opt. SAW" objective:
/// minimize stuck-at-wrong cells first, then MLC write energy.
pub fn opt_saw_then_energy() -> Lexico<SawCount, WriteEnergy> {
    Lexico::new(SawCount, WriteEnergy::mlc())
}

/// Convenience constructor for the paper's "Opt. Energy" objective:
/// minimize MLC write energy first, then stuck-at-wrong cells.
pub fn opt_energy_then_saw() -> Lexico<WriteEnergy, SawCount> {
    Lexico::new(WriteEnergy::mlc(), SawCount)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_is_lexicographic() {
        let a = Cost::with_secondary(1.0, 100.0);
        let b = Cost::with_secondary(2.0, 0.0);
        assert!(a.is_better_than(&b));
        assert!(!b.is_better_than(&a));
        let c = Cost::with_secondary(1.0, 99.0);
        assert!(c.is_better_than(&a));
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn cost_addition_and_sum() {
        let a = Cost::with_secondary(1.0, 2.0);
        let b = Cost::with_secondary(3.0, 4.0);
        let s = a + b;
        assert_eq!(s.primary, 4.0);
        assert_eq!(s.secondary, 6.0);
        let total: Cost = [a, b, Cost::ZERO].into_iter().sum();
        assert_eq!(total.primary, 4.0);
    }

    #[test]
    fn ones_count_masks_width() {
        let f = Field::new(u64::MAX, 0, 10);
        assert_eq!(OnesCount.field_cost(&f).primary, 10.0);
    }

    #[test]
    fn bit_flips_counts_differences() {
        let f = Field::new(0b1100, 0b1010, 4);
        assert_eq!(BitFlips.field_cost(&f).primary, 2.0);
    }

    #[test]
    fn saw_counts_only_wrong_stuck_cells() {
        let f = Field {
            new: 0b1111,
            old: 0,
            stuck_mask: 0b0110,
            stuck_value: 0b0010,
            bits: 4,
        };
        // Bit 1 stuck at 1 and we write 1: fine. Bit 2 stuck at 0 and we
        // write 1: stuck-at-wrong.
        assert_eq!(SawCount.field_cost(&f).primary, 1.0);
        assert_eq!(f.saw_bits(), 1);
        assert_eq!(f.effective_stored(), 0b1011);
    }

    #[test]
    fn table_i_energy_shape() {
        let t = TransitionEnergy::mlc_table_i();
        // Diagonal is free.
        for s in 0..4u8 {
            assert_eq!(t.energy(s, s), 0.0);
        }
        // New right digit 1 => high energy.
        assert_eq!(t.energy(0b00, 0b01), MLC_HIGH_TRANSITION_PJ);
        assert_eq!(t.energy(0b00, 0b11), MLC_HIGH_TRANSITION_PJ);
        assert_eq!(t.energy(0b10, 0b11), MLC_HIGH_TRANSITION_PJ);
        // New right digit 0 => low energy.
        assert_eq!(t.energy(0b00, 0b10), MLC_LOW_TRANSITION_PJ);
        assert_eq!(t.energy(0b01, 0b00), MLC_LOW_TRANSITION_PJ);
        assert_eq!(t.energy(0b11, 0b10), MLC_LOW_TRANSITION_PJ);
        assert!(t.max_energy() >= MLC_HIGH_TRANSITION_PJ);
    }

    #[test]
    fn mlc_energy_cost_sums_cells() {
        let cf = WriteEnergy::mlc();
        // Two symbols: old 00->new 01 (high), old 00 -> new 10 (low).
        let f = Field::new(0b10_01, 0b00_00, 4);
        let c = cf.field_cost(&f);
        assert!((c.primary - (MLC_HIGH_TRANSITION_PJ + MLC_LOW_TRANSITION_PJ)).abs() < 1e-9);
    }

    #[test]
    fn mlc_energy_skips_stuck_cells() {
        let cf = WriteEnergy::mlc();
        let f = Field {
            new: 0b01,
            old: 0b00,
            stuck_mask: 0b11,
            stuck_value: 0b00,
            bits: 2,
        };
        assert_eq!(cf.field_cost(&f).primary, 0.0);
    }

    #[test]
    fn slc_energy_counts_flips() {
        let cf = WriteEnergy::slc();
        let f = Field::new(0b111, 0b001, 3);
        assert!((cf.field_cost(&f).primary - 2.0 * SLC_TRANSITION_PJ).abs() < 1e-9);
    }

    #[test]
    fn lexico_orders_by_primary_then_secondary() {
        let cf = opt_saw_then_energy();
        // Candidate A: no SAW, expensive energy.
        let a = Field {
            new: 0b01,
            old: 0b00,
            stuck_mask: 0,
            stuck_value: 0,
            bits: 2,
        };
        // Candidate B: one SAW, zero energy (stuck cell skipped).
        let b = Field {
            new: 0b01,
            old: 0b01,
            stuck_mask: 0b11,
            stuck_value: 0b00,
            bits: 2,
        };
        let ca = cf.field_cost(&a);
        let cb = cf.field_cost(&b);
        assert!(ca.is_better_than(&cb));
        assert_eq!(cf.name(), "saw-then-write-energy-mlc");
    }

    #[test]
    fn region_cost_matches_manual_sum() {
        let cf = BitFlips;
        let new = [u64::MAX, 0b1];
        let old = [0u64, 0b0];
        let zero = [0u64, 0];
        let c = cf.region_cost(&new, &old, &zero, &zero, 65);
        assert_eq!(c.primary, 65.0);
    }

    #[test]
    fn fast_energy_paths_match_generic_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mlc = WriteEnergy::mlc();
        let slc = WriteEnergy::slc();
        assert!(mlc.fast.is_some(), "Table I must take the fast path");
        assert!(slc.fast.is_some(), "symmetric SLC must take the fast path");
        for _ in 0..2000 {
            let bits = 2 * rng.gen_range(1..=32u32);
            let stuck_mask: u64 = rng.gen::<u64>() & rng.gen::<u64>();
            // MLC stuck cells freeze whole symbols; mirror that in the mask.
            let sym_stuck = {
                let m = stuck_mask & 0x5555_5555_5555_5555;
                m | (m << 1)
            };
            let f = Field {
                new: rng.gen(),
                old: rng.gen(),
                stuck_mask: sym_stuck,
                stuck_value: rng.gen(),
                bits,
            };
            assert_eq!(
                mlc.field_cost(&f).primary,
                mlc.field_cost_generic(&f).primary,
                "MLC fast path diverged on {f:?}"
            );
            let g = Field { stuck_mask, ..f };
            assert_eq!(
                slc.field_cost(&g).primary,
                slc.field_cost_generic(&g).primary,
                "SLC fast path diverged on {g:?}"
            );
        }
        // A lopsided custom MLC table must fall back to the generic loop.
        let mut weird = [[1.0f64; 4]; 4];
        weird[2][3] = 9.0;
        let custom = WriteEnergy::new(TransitionEnergy::custom_mlc(weird));
        assert!(custom.fast.is_none());
    }

    #[test]
    fn fast_mlc_path_handles_partially_stuck_cells_like_generic() {
        // The generic loop skips a cell when ANY of its bits is stuck; the
        // folded stuck mask must reproduce that even for half-stuck masks.
        let mlc = WriteEnergy::mlc();
        let f = Field {
            new: 0b01_01,
            old: 0b00_00,
            stuck_mask: 0b10_00, // left digit of cell 1 stuck only
            stuck_value: 0,
            bits: 4,
        };
        assert_eq!(
            mlc.field_cost(&f).primary,
            mlc.field_cost_generic(&f).primary
        );
        assert_eq!(mlc.field_cost(&f).primary, MLC_HIGH_TRANSITION_PJ);
    }

    #[test]
    fn custom_tables() {
        let slc = TransitionEnergy::custom_slc([[0.0, 5.0], [7.0, 0.0]]);
        assert_eq!(slc.energy(0, 1), 5.0);
        assert_eq!(slc.energy(1, 0), 7.0);
        let mut m = [[1.0f64; 4]; 4];
        m[2][3] = 9.0;
        let mlc = TransitionEnergy::custom_mlc(m);
        assert_eq!(mlc.energy(2, 3), 9.0);
    }
}
