//! Cost functions driving coset candidate selection.
//!
//! Every encoder in this crate evaluates candidate codewords with a
//! [`CostFunction`] and keeps the cheapest one. The paper uses several
//! objectives, all reproduced here:
//!
//! * number of written `1`s (the worked example of Figure 3),
//! * number of bit flips relative to the data already in the row
//!   (Flip-N-Write-style, Section II-C),
//! * MLC/SLC write energy using the Table I transition energies,
//! * number of stuck-at-wrong (SAW) cells, i.e. stuck cells whose stored
//!   value differs from the value being written,
//! * lexicographic combinations (SAW-first-then-energy and
//!   energy-first-then-SAW, Section VI-A).
//!
//! Cost functions operate on `u64`-sized *fields*: a field is at most 64
//! bits of new data, the old data occupying those cells, and the stuck-at
//! state of those cells. Blocks wider than 64 bits are costed by summing
//! their 64-bit words; partitions narrower than 64 bits (VCC kernels) are
//! costed directly. MLC symbols are two adjacent bits, so fields must hold
//! an even number of bits when an MLC energy model is used.

use std::fmt;
use std::ops::Add;

use crate::symbol::{CellKind, MLC_RIGHT_DIGITS};

/// Largest per-bit class cost admitted by the fixed-point path. Keeps every
/// realistic accumulation (≤ 64 bits/word × 8 words/line) exactly
/// representable in both `u64` and `f64`, so the fixed-point sums convert
/// back to the scalar path's `f64` costs bit-identically.
const MAX_CLASS_UNIT: f64 = (1u64 << 32) as f64;

/// Fixed-point integer cost used by the word-batched (SWAR) candidate
/// search. The hot encoder loops accumulate costs as plain `u64` counters
/// and compare them with [`FixedCost::packed`]; `f64` [`Cost`] values only
/// reappear at the [`crate::Encoded`] boundary via [`FixedCost::to_cost`].
///
/// All built-in objectives have integer per-bit class costs (counts, or the
/// integer-picojoule Table I energies), so the conversion is exact and the
/// SWAR path selects the same candidates as the scalar `f64` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedCost {
    /// Dominant component of the objective.
    pub primary: u64,
    /// Tie-breaking component of the objective.
    pub secondary: u64,
}

impl FixedCost {
    /// The zero cost.
    pub const ZERO: FixedCost = FixedCost {
        primary: 0,
        secondary: 0,
    };

    /// Packs the two components into one `u128` whose integer ordering is
    /// the lexicographic cost ordering (primary dominates). Valid as long as
    /// each component stays below `2^64`, which [`MAX_CLASS_UNIT`]
    /// guarantees by a wide margin.
    #[inline]
    pub fn packed(self) -> u128 {
        ((self.primary as u128) << 64) | self.secondary as u128
    }

    /// Converts to the scalar `f64` [`Cost`]. Exact for every value the
    /// class machinery can produce (integer sums far below `2^53`).
    #[inline]
    pub fn to_cost(self) -> Cost {
        Cost {
            primary: self.primary as f64,
            secondary: self.secondary as f64,
        }
    }

    /// Branch-free cheaper-of-two: returns `(1, b)` when `b` is strictly
    /// cheaper than `a` (packed lexicographic compare, matching
    /// [`Cost::is_better_than`] on integer costs), else `(0, a)` — the
    /// per-partition select of the broadcast candidate search.
    #[inline(always)]
    pub fn select_min(a: FixedCost, b: FixedCost) -> (u64, FixedCost) {
        let take_b = (b.packed() < a.packed()) as u64;
        let chosen = FixedCost {
            primary: if take_b == 1 { b.primary } else { a.primary },
            secondary: if take_b == 1 {
                b.secondary
            } else {
                a.secondary
            },
        };
        (take_b, chosen)
    }
}

impl Add for FixedCost {
    type Output = FixedCost;

    #[inline]
    fn add(self, rhs: FixedCost) -> FixedCost {
        FixedCost {
            primary: self.primary + rhs.primary,
            secondary: self.secondary + rhs.secondary,
        }
    }
}

impl std::ops::AddAssign for FixedCost {
    #[inline]
    fn add_assign(&mut self, rhs: FixedCost) {
        // DET-OK: u64 fixed-point accumulation — integer adds are exact by
        // construction (the fields share names with the f64 `Cost`).
        self.primary += rhs.primary;
        self.secondary += rhs.secondary; // DET-OK: exact integer add
    }
}

/// How one transition class derives its programmed-bit plane from a
/// candidate word and the destination planes (old data, stuck mask, stuck
/// values). A class's cost is its per-bit unit times the population count
/// of the plane — the software analogue of the paper's per-class counting
/// hardware, and the same trick the PCM commit path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassRule {
    /// Bits set in the candidate itself ([`OnesCount`]).
    #[default]
    Ones,
    /// Bits that differ from the stored data ([`BitFlips`]).
    Flips,
    /// MLC cells being programmed into a right-digit-`1` symbol, folded
    /// onto the right-digit (even) bit positions. Requires symbol-aligned
    /// evaluation masks.
    MlcHigh,
    /// MLC cells being programmed into a right-digit-`0` symbol.
    MlcLow,
    /// SLC cells programmed `0 → 1`.
    SlcSet,
    /// SLC cells programmed `1 → 0`.
    SlcReset,
    /// Stuck bits frozen at the wrong value ([`SawCount`]).
    Saw,
}

impl ClassRule {
    /// Cell width this rule's planes assume: MLC rules fold per-cell flags
    /// onto even bit positions, so evaluation masks must cover whole 2-bit
    /// symbols; every other rule is position-independent.
    #[inline]
    pub fn cell_bits(self) -> u32 {
        match self {
            ClassRule::MlcHigh | ClassRule::MlcLow => 2,
            _ => 1,
        }
    }
}

/// One transition class: a plane-derivation rule plus its fixed-point
/// per-bit cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostClass {
    /// Plane derivation rule.
    pub rule: ClassRule,
    /// Primary cost charged per plane bit.
    pub primary: u64,
    /// Secondary (tie-break) cost charged per plane bit.
    pub secondary: u64,
}

/// A [`CostClass`] compiled to a branchless mask-parameterized plane
/// formula, so the hot loops evaluate every rule with the same dozen
/// straight-line ALU operations:
///
/// ```text
/// diffish = new ^ (old & a) ^ (stuck_value & b)
/// base    = select(fold, (diffish | diffish >> 1) & RIGHT, diffish)
/// smx     = select(fold, (sm | sm >> 1) & RIGHT, sm)
/// plane   = base & ((smx & c) | (!smx & d)) & ((new & e) | (!new & f)) & mask
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CompiledClass {
    /// Old-data XOR selector (`MAX` for difference-based rules).
    a: u64,
    /// Stuck-value XOR selector (`MAX` for the SAW rule).
    b: u64,
    /// MLC right-digit fold selector (`MAX` folds per-cell flags).
    fold: u64,
    /// Stuck-gate selector pair: keep stuck bits (`c`) / non-stuck (`d`).
    c: u64,
    /// See `c`.
    d: u64,
    /// Candidate-polarity selector pair: keep `1`s (`e`) / `0`s (`f`).
    e: u64,
    /// See `e`.
    f: u64,
}

impl CompiledClass {
    fn compile(rule: ClassRule) -> CompiledClass {
        let max = u64::MAX;
        match rule {
            ClassRule::Ones => CompiledClass {
                a: 0,
                b: 0,
                fold: 0,
                c: max,
                d: max,
                e: max,
                f: max,
            },
            ClassRule::Flips => CompiledClass {
                a: max,
                b: 0,
                fold: 0,
                c: max,
                d: max,
                e: max,
                f: max,
            },
            ClassRule::MlcHigh | ClassRule::MlcLow => CompiledClass {
                a: max,
                b: 0,
                fold: max,
                c: 0,
                d: max,
                e: if rule == ClassRule::MlcHigh { max } else { 0 },
                f: if rule == ClassRule::MlcHigh { 0 } else { max },
            },
            ClassRule::SlcSet | ClassRule::SlcReset => CompiledClass {
                a: max,
                b: 0,
                fold: 0,
                c: 0,
                d: max,
                e: if rule == ClassRule::SlcSet { max } else { 0 },
                f: if rule == ClassRule::SlcSet { 0 } else { max },
            },
            ClassRule::Saw => CompiledClass {
                a: 0,
                b: max,
                fold: 0,
                c: max,
                d: 0,
                e: max,
                f: max,
            },
        }
    }

    /// Branchless plane derivation (see the struct docs for the formula).
    #[inline(always)]
    fn plane(&self, new: u64, old: u64, sm: u64, sv: u64, mask: u64) -> u64 {
        let diffish = new ^ (old & self.a) ^ (sv & self.b);
        let folded = (diffish | (diffish >> 1)) & MLC_RIGHT_DIGITS;
        let base = (folded & self.fold) | (diffish & !self.fold);
        let smf = (sm | (sm >> 1)) & MLC_RIGHT_DIGITS;
        let smx = (smf & self.fold) | (sm & !self.fold);
        let gate = (smx & self.c) | (!smx & self.d);
        let pol = (new & self.e) | (!new & self.f);
        base & gate & pol & mask
    }

    /// Fused plane derivation for a candidate `new` and its complement form
    /// `new ^ cmask`: `new` enters the formula linearly, so the complement's
    /// difference plane is one extra XOR and the stuck gate is shared. This
    /// is the per-kernel workhorse of the VCC/FNW cheaper-of-two search.
    #[inline(always)]
    fn plane_pair(
        &self,
        new: u64,
        cmask: u64,
        old: u64,
        sm: u64,
        sv: u64,
        mask: u64,
    ) -> (u64, u64) {
        let diffish = new ^ (old & self.a) ^ (sv & self.b);
        let diffish_c = diffish ^ cmask;
        let folded = (diffish | (diffish >> 1)) & MLC_RIGHT_DIGITS;
        let folded_c = (diffish_c | (diffish_c >> 1)) & MLC_RIGHT_DIGITS;
        let base = (folded & self.fold) | (diffish & !self.fold);
        let base_c = (folded_c & self.fold) | (diffish_c & !self.fold);
        let smf = (sm | (sm >> 1)) & MLC_RIGHT_DIGITS;
        let smx = (smf & self.fold) | (sm & !self.fold);
        let gate = (smx & self.c) | (!smx & self.d);
        let new_c = new ^ cmask;
        let pol = (new & self.e) | (!new & self.f);
        let pol_c = (new_c & self.e) | (!new_c & self.f);
        let gm = gate & mask;
        (base & pol & gm, base_c & pol_c & gm)
    }
}

/// The transition classes of a cost function (at most [`ClassSet::MAX`]).
///
/// Obtained from [`CostFunction::classes`]; evaluated either over whole
/// words ([`ClassSet::cost`]) or over precomputed planes restricted to
/// partition masks ([`ClassSet::planes`] + [`ClassSet::plane_cost`]) — the
/// latter is what lets the VCC encoder cost every partition of a block with
/// a handful of popcounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassSet {
    classes: [CostClass; ClassSet::MAX],
    compiled: [CompiledClass; ClassSet::MAX],
    len: u8,
    /// Whether any class charges a secondary (tie-break) unit; when false
    /// the hot loops skip the secondary accumulation entirely.
    has_secondary: bool,
}

/// Splits a word into `field_bits`-wide fields (a power of two dividing 64)
/// and returns a word holding each field's population count in place — the
/// SWAR primitive that costs every VCC partition of a class plane at once.
#[inline(always)]
pub fn per_field_popcount(x: u64, field_bits: usize) -> u64 {
    debug_assert!(field_bits.is_power_of_two() && field_bits <= 64);
    if field_bits == 1 {
        return x;
    }
    let mut x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    if field_bits == 2 {
        return x;
    }
    x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    if field_bits == 4 {
        return x;
    }
    x = (x + (x >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    if field_bits == 8 {
        return x;
    }
    x = (x + (x >> 8)) & 0x00FF_00FF_00FF_00FF;
    if field_bits == 16 {
        return x;
    }
    x = (x + (x >> 16)) & 0x0000_FFFF_0000_FFFF;
    if field_bits == 32 {
        return x;
    }
    (x + (x >> 32)) & 0x7F
}

impl ClassSet {
    /// Maximum number of classes (enough for a lexicographic combination of
    /// a count objective and a two-class energy objective, or two energies).
    pub const MAX: usize = 4;

    /// A single-class set with the given primary unit cost.
    pub fn single(rule: ClassRule, unit: u64) -> Self {
        let mut set = ClassSet::default();
        set.push(CostClass {
            rule,
            primary: unit,
            secondary: 0,
        });
        set
    }

    /// Appends a class; returns `false` (set unchanged) when full.
    pub fn push(&mut self, class: CostClass) -> bool {
        if (self.len as usize) < Self::MAX {
            self.classes[self.len as usize] = class;
            self.compiled[self.len as usize] = CompiledClass::compile(class.rule);
            self.len += 1;
            self.has_secondary |= class.secondary != 0;
            true
        } else {
            false
        }
    }

    /// Per-partition population counts of precomputed planes: each entry is
    /// a word whose `field_bits`-wide fields hold that partition's plane
    /// popcount ([`per_field_popcount`]). `field_bits` must be a power of
    /// two — always the case in the broadcast fast paths, whose gate
    /// requires partition widths dividing 64.
    #[inline(always)]
    pub fn field_counts(&self, planes: &[u64; Self::MAX], field_bits: usize) -> [u64; Self::MAX] {
        let mut counts = [0u64; Self::MAX];
        for (c, p) in counts.iter_mut().zip(planes[..self.len as usize].iter()) {
            *c = per_field_popcount(*p, field_bits);
        }
        counts
    }

    /// Whether weighted per-field cost words stay within `field_bits`-wide
    /// fields: the worst-case field cost `Σ units × field_bits` must fit a
    /// field without carrying into its neighbour (checked separately for
    /// the primary and secondary components).
    pub fn weighted_fields_fit(&self, field_bits: usize) -> bool {
        if field_bits >= 64 {
            return false;
        }
        let cap = 1u128 << field_bits;
        let worst = |unit_of: fn(&CostClass) -> u64| -> u128 {
            self.classes()
                .iter()
                .map(|c| unit_of(c) as u128 * field_bits as u128)
                .sum()
        };
        worst(|c| c.primary) < cap && worst(|c| c.secondary) < cap
    }

    /// Folds per-field counts into weighted per-field cost words: each
    /// field of the returned `(primary, secondary)` words holds that
    /// partition's full fixed-point cost component. Only valid when
    /// [`ClassSet::weighted_fields_fit`] holds for the counts' field width
    /// (otherwise the per-field products carry across fields).
    #[inline(always)]
    pub fn weighted_fields(&self, counts: &[u64; Self::MAX]) -> (u64, u64) {
        let mut primary = 0u64;
        let mut secondary = 0u64;
        for (c, class) in counts[..self.len as usize].iter().zip(self.classes()) {
            primary = primary.wrapping_add(c.wrapping_mul(class.primary));
            if self.has_secondary {
                secondary = secondary.wrapping_add(c.wrapping_mul(class.secondary));
            }
        }
        (primary, secondary)
    }

    /// Cost of one partition from precomputed [`ClassSet::field_counts`]:
    /// the partition's counts sit at `shift` under `field_mask`.
    #[inline(always)]
    pub fn count_cost(
        &self,
        counts: &[u64; Self::MAX],
        shift: usize,
        field_mask: u64,
    ) -> FixedCost {
        let mut cost = FixedCost::ZERO;
        for (c, class) in counts[..self.len as usize].iter().zip(self.classes()) {
            let n = (c >> shift) & field_mask;
            // DET-OK: u64 fixed-point — exact integer accumulation.
            cost.primary += n * class.primary;
            if self.has_secondary {
                cost.secondary += n * class.secondary; // DET-OK: u64 add
            }
        }
        cost
    }

    /// The classes as a slice.
    #[inline]
    pub fn classes(&self) -> &[CostClass] {
        &self.classes[..self.len as usize]
    }

    /// Widest cell any class assumes (2 when an MLC class is present):
    /// evaluation masks must cover whole cells of this width.
    pub fn cell_bits(&self) -> u32 {
        self.classes()
            .iter()
            .map(|c| c.rule.cell_bits())
            .max()
            .unwrap_or(1)
    }

    /// Derives every class's programmed-bit plane for writing `new` over a
    /// destination word described by `old` / `stuck_mask` / `stuck_value`,
    /// restricted to `mask`. Unused slots stay zero.
    #[inline(always)]
    pub fn planes(
        &self,
        new: u64,
        old: u64,
        stuck_mask: u64,
        stuck_value: u64,
        mask: u64,
    ) -> [u64; Self::MAX] {
        let mut planes = [0u64; Self::MAX];
        for (p, compiled) in planes
            .iter_mut()
            .zip(self.compiled[..self.len as usize].iter())
        {
            *p = compiled.plane(new, old, stuck_mask, stuck_value, mask);
        }
        planes
    }

    /// Fused variant of [`ClassSet::planes`] deriving the planes of a
    /// candidate `new` *and* of its complement form `new ^ cmask` in one
    /// pass (shared difference/stuck subexpressions): the per-kernel
    /// workhorse of the cheaper-of-two partition search.
    #[inline(always)]
    pub fn planes_pair(
        &self,
        new: u64,
        cmask: u64,
        old: u64,
        stuck_mask: u64,
        stuck_value: u64,
        mask: u64,
    ) -> ([u64; Self::MAX], [u64; Self::MAX]) {
        let mut direct = [0u64; Self::MAX];
        let mut comp = [0u64; Self::MAX];
        for ((p, q), compiled) in direct
            .iter_mut()
            .zip(comp.iter_mut())
            .zip(self.compiled[..self.len as usize].iter())
        {
            let (a, b) = compiled.plane_pair(new, cmask, old, stuck_mask, stuck_value, mask);
            *p = a;
            *q = b;
        }
        (direct, comp)
    }

    /// Sums the class costs of precomputed planes restricted to `mask`
    /// (e.g. one VCC partition). `mask` must be a subset of the mask the
    /// planes were derived with, and must cover whole cells for MLC rules.
    #[inline(always)]
    pub fn plane_cost(&self, planes: &[u64; Self::MAX], mask: u64) -> FixedCost {
        let mut cost = FixedCost::ZERO;
        for (p, class) in planes.iter().zip(self.classes()) {
            let n = (p & mask).count_ones() as u64;
            // DET-OK: u64 fixed-point — exact integer accumulation.
            cost.primary += n * class.primary;
            if self.has_secondary {
                cost.secondary += n * class.secondary; // DET-OK: u64 add
            }
        }
        cost
    }

    /// Full cost of writing `new` over one destination word, restricted to
    /// `mask`.
    #[inline(always)]
    pub fn cost(
        &self,
        new: u64,
        old: u64,
        stuck_mask: u64,
        stuck_value: u64,
        mask: u64,
    ) -> FixedCost {
        let planes = self.planes(new, old, stuck_mask, stuck_value, mask);
        self.plane_cost(&planes, mask)
    }
}

/// Converts an `f64` class cost to its exact fixed-point unit, if it has
/// one (non-negative integer below [`MAX_CLASS_UNIT`]).
fn integer_unit(x: f64) -> Option<u64> {
    ((0.0..=MAX_CLASS_UNIT).contains(&x) && x.fract() == 0.0).then_some(x as u64)
}

/// A candidate cost. Ordering is lexicographic: `primary` dominates,
/// `secondary` breaks ties. Plain single-objective cost functions put their
/// value in `primary` and leave `secondary` at zero.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cost {
    /// Dominant component of the objective.
    pub primary: f64,
    /// Tie-breaking component of the objective.
    pub secondary: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        primary: 0.0,
        secondary: 0.0,
    };

    /// Creates a single-objective cost.
    pub fn new(primary: f64) -> Self {
        Cost {
            primary,
            secondary: 0.0,
        }
    }

    /// Creates a two-level lexicographic cost.
    pub fn with_secondary(primary: f64, secondary: f64) -> Self {
        Cost { primary, secondary }
    }

    /// Returns `true` if `self` is strictly cheaper than `other`
    /// (lexicographic comparison, NaN treated as most expensive).
    pub fn is_better_than(&self, other: &Cost) -> bool {
        match self.primary.total_cmp(&other.primary) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                self.secondary.total_cmp(&other.secondary) == std::cmp::Ordering::Less
            }
        }
    }
}

impl Default for Cost {
    fn default() -> Self {
        Cost::ZERO
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            primary: self.primary + rhs.primary,
            secondary: self.secondary + rhs.secondary,
        }
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(
            self.primary
                .total_cmp(&other.primary)
                .then(self.secondary.total_cmp(&other.secondary)),
        )
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.secondary == 0.0 {
            write!(f, "{:.4}", self.primary)
        } else {
            write!(f, "({:.4}, {:.4})", self.primary, self.secondary)
        }
    }
}

/// One costing unit: up to 64 bits of candidate data plus the memory state
/// it would overwrite.
#[derive(Debug, Clone, Copy)]
pub struct Field {
    /// Candidate bits to be written (low `bits` bits are significant).
    pub new: u64,
    /// Bits currently stored in the target cells.
    pub old: u64,
    /// Mask of cells that are stuck (1 = stuck). For MLC, both bits of a
    /// stuck cell are expected to be set in the mask.
    pub stuck_mask: u64,
    /// The values the stuck cells are frozen at (only meaningful where
    /// `stuck_mask` is set).
    pub stuck_value: u64,
    /// Number of significant bits (1..=64).
    pub bits: u32,
}

impl Field {
    /// Constructs a field with no stuck cells.
    pub fn new(new: u64, old: u64, bits: u32) -> Self {
        Field {
            new,
            old,
            stuck_mask: 0,
            stuck_value: 0,
            bits,
        }
    }

    /// Mask covering the significant bits of this field.
    #[inline]
    pub fn bit_mask(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// The data that will actually end up stored: stuck cells keep their
    /// frozen value, everything else takes the new value.
    #[inline]
    pub fn effective_stored(&self) -> u64 {
        ((self.new & !self.stuck_mask) | (self.stuck_value & self.stuck_mask)) & self.bit_mask()
    }

    /// Number of stuck-at-wrong bits: stuck cells whose frozen value differs
    /// from the value being written.
    #[inline]
    pub fn saw_bits(&self) -> u32 {
        ((self.new ^ self.stuck_value) & self.stuck_mask & self.bit_mask()).count_ones()
    }
}

/// Objective evaluated for every candidate codeword.
///
/// Implementations must be pure functions of the field contents so that the
/// encoder may evaluate partitions independently and in any order.
pub trait CostFunction: Send + Sync {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Cost of writing one field.
    fn field_cost(&self, field: &Field) -> Cost;

    /// Cost of writing a multi-word region described by parallel slices.
    ///
    /// `bits` is the total number of significant bits; slices must contain
    /// `ceil(bits / 64)` words.
    fn region_cost(
        &self,
        new: &[u64],
        old: &[u64],
        stuck_mask: &[u64],
        stuck_value: &[u64],
        bits: usize,
    ) -> Cost {
        let words = bits.div_ceil(64);
        assert!(new.len() >= words && old.len() >= words);
        assert!(stuck_mask.len() >= words && stuck_value.len() >= words);
        let mut total = Cost::ZERO;
        let mut remaining = bits;
        for w in 0..words {
            let b = remaining.min(64) as u32;
            total = total
                + self.field_cost(&Field {
                    new: new[w],
                    old: old[w],
                    stuck_mask: stuck_mask[w],
                    stuck_value: stuck_value[w],
                    bits: b,
                });
            remaining -= b as usize;
        }
        total
    }

    /// The transition classes of this objective, if it admits the
    /// word-batched integer (SWAR) evaluation path.
    ///
    /// `None` (the default) routes every batched entry point — and the
    /// encoders' broadcast candidate search — through the scalar
    /// [`CostFunction::field_cost`] fallback. All five built-in objectives
    /// override this; [`WriteEnergy`] returns `None` for custom transition
    /// tables that are not per-class shaped or not integer-valued.
    fn classes(&self) -> Option<ClassSet> {
        None
    }

    /// Word-batched counterpart of [`CostFunction::region_cost`]: costs a
    /// multi-word region through the transition-class planes when
    /// [`CostFunction::classes`] provides them, and falls back to the
    /// scalar per-field path otherwise. Results are bit-identical to the
    /// scalar path for every built-in objective.
    fn cost_words(
        &self,
        new: &[u64],
        old: &[u64],
        stuck_mask: &[u64],
        stuck_value: &[u64],
        bits: usize,
    ) -> Cost {
        if let Some(classes) = self.classes() {
            // MLC classes need whole symbols; odd widths take the scalar
            // path so its cell-alignment assertion stays authoritative.
            if bits.is_multiple_of(classes.cell_bits() as usize) {
                let words = bits.div_ceil(64);
                assert!(new.len() >= words && old.len() >= words);
                assert!(stuck_mask.len() >= words && stuck_value.len() >= words);
                let mut total = FixedCost::ZERO;
                let mut remaining = bits;
                for w in 0..words {
                    let b = remaining.min(64);
                    let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
                    total += classes.cost(new[w], old[w], stuck_mask[w], stuck_value[w], mask);
                    remaining -= b;
                }
                return total.to_cost();
            }
        }
        self.region_cost(new, old, stuck_mask, stuck_value, bits)
    }
}

/// Testing/debug wrapper that forces the scalar [`CostFunction::field_cost`]
/// path by hiding the inner objective's transition classes. The
/// differential `cost_oracle` suite pins the broadcast-SWAR encoders to the
/// scalar reference by running the same encoder with and without this
/// wrapper.
#[derive(Debug, Clone)]
pub struct ScalarOnly<C>(pub C);

impl<C: CostFunction> CostFunction for ScalarOnly<C> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn field_cost(&self, field: &Field) -> Cost {
        self.0.field_cost(field)
    }

    fn region_cost(
        &self,
        new: &[u64],
        old: &[u64],
        stuck_mask: &[u64],
        stuck_value: &[u64],
        bits: usize,
    ) -> Cost {
        self.0.region_cost(new, old, stuck_mask, stuck_value, bits)
    }

    // `classes` intentionally left at the default `None`.
}

/// Counts the `1` bits written (the paper's Figure 3 objective).
///
/// Writing more `1`s (SET pulses toward intermediate states in MLC) is the
/// expensive direction, so minimizing ones is a simple proxy for energy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnesCount;

impl CostFunction for OnesCount {
    fn name(&self) -> &str {
        "ones"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new((field.new & field.bit_mask()).count_ones() as f64)
    }

    fn classes(&self) -> Option<ClassSet> {
        Some(ClassSet::single(ClassRule::Ones, 1))
    }
}

/// Counts bits that differ from the data already stored (Flip-N-Write /
/// differential-write objective).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitFlips;

impl CostFunction for BitFlips {
    fn name(&self) -> &str {
        "bit-flips"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new(((field.new ^ field.old) & field.bit_mask()).count_ones() as f64)
    }

    fn classes(&self) -> Option<ClassSet> {
        Some(ClassSet::single(ClassRule::Flips, 1))
    }
}

/// Counts stuck-at-wrong cells only.
#[derive(Debug, Clone, Copy, Default)]
pub struct SawCount;

impl CostFunction for SawCount {
    fn name(&self) -> &str {
        "saw"
    }

    fn field_cost(&self, field: &Field) -> Cost {
        Cost::new(field.saw_bits() as f64)
    }

    fn classes(&self) -> Option<ClassSet> {
        Some(ClassSet::single(ClassRule::Saw, 1))
    }
}

/// Per-transition write energies for a memory cell, in picojoules.
///
/// For MLC the matrix is indexed `[old_symbol][new_symbol]` over the four
/// Gray-coded symbols `00, 01, 11, 10` (using the symbol's numeric value as
/// the index). For SLC it is indexed `[old_bit][new_bit]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransitionEnergy {
    kind: CellKind,
    /// `energy[old][new]` in picojoules.
    table: [[f64; 4]; 4],
}

/// Energy of a low-cost MLC transition (full SET or RESET toward an extreme
/// Gray level whose right digit is `0`), in pJ. Calibrated to the prototype
/// MLC PCM of Bedeschi et al. / Wang et al. used by the paper: intermediate
/// levels cost roughly an order of magnitude more than the extremes.
pub const MLC_LOW_TRANSITION_PJ: f64 = 13.0;

/// Energy of a high-cost MLC transition (program-and-verify into an
/// intermediate level whose right digit is `1`), in pJ.
pub const MLC_HIGH_TRANSITION_PJ: f64 = 132.0;

/// Energy of flipping an SLC cell (single SET or RESET pulse), in pJ.
pub const SLC_TRANSITION_PJ: f64 = 13.0;

impl TransitionEnergy {
    /// The paper's Table I energy model for 2-bit MLC PCM: any transition
    /// into a symbol whose right digit is `1` is high energy, any transition
    /// into a symbol whose right digit is `0` is low energy, and rewriting
    /// the same symbol is free (differential write skips it).
    pub fn mlc_table_i() -> Self {
        let mut table = [[0.0f64; 4]; 4];
        for (old, row) in table.iter_mut().enumerate() {
            for (new, e) in row.iter_mut().enumerate() {
                *e = if old == new {
                    0.0
                } else if new & 1 == 1 {
                    MLC_HIGH_TRANSITION_PJ
                } else {
                    MLC_LOW_TRANSITION_PJ
                };
            }
        }
        TransitionEnergy {
            kind: CellKind::Mlc,
            table,
        }
    }

    /// A symmetric SLC energy model: any bit flip costs
    /// [`SLC_TRANSITION_PJ`], rewrites are free.
    pub fn slc_symmetric() -> Self {
        let mut table = [[0.0f64; 4]; 4];
        table[0][1] = SLC_TRANSITION_PJ;
        table[1][0] = SLC_TRANSITION_PJ;
        TransitionEnergy {
            kind: CellKind::Slc,
            table,
        }
    }

    /// Builds a custom MLC table. `table[old][new]` is indexed by symbol
    /// value (0..4).
    pub fn custom_mlc(table: [[f64; 4]; 4]) -> Self {
        TransitionEnergy {
            kind: CellKind::Mlc,
            table,
        }
    }

    /// Builds a custom SLC table from a 2x2 matrix.
    pub fn custom_slc(table: [[f64; 2]; 2]) -> Self {
        let mut full = [[0.0f64; 4]; 4];
        for old in 0..2 {
            for new in 0..2 {
                full[old][new] = table[old][new];
            }
        }
        TransitionEnergy {
            kind: CellKind::Slc,
            table: full,
        }
    }

    /// The cell kind this table describes.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Energy in pJ of programming a cell from `old` to `new`
    /// (symbol values for MLC, bit values for SLC).
    #[inline]
    pub fn energy(&self, old: u8, new: u8) -> f64 {
        self.table[old as usize][new as usize]
    }

    /// The largest single-cell transition energy in the table.
    pub fn max_energy(&self) -> f64 {
        self.table.iter().flatten().copied().fold(0.0f64, f64::max)
    }
}

impl Default for TransitionEnergy {
    fn default() -> Self {
        TransitionEnergy::mlc_table_i()
    }
}

/// Bit-parallel evaluation strategy for a [`WriteEnergy`] table, detected
/// once at construction. The encoder hot loop costs every candidate with
/// `field_cost`; for the two table shapes the paper actually uses, the whole
/// 64-bit field reduces to a handful of popcounts instead of a 32-iteration
/// per-cell loop.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FastEnergy {
    /// Table I shape: rewriting a symbol is free, any change into a symbol
    /// with right digit `1` costs `high`, any other change costs `low`.
    MlcByRightDigit {
        /// Energy of a change into a right-digit-0 symbol.
        low: f64,
        /// Energy of a change into a right-digit-1 symbol.
        high: f64,
    },
    /// SLC with a free diagonal: a 0→1 flip costs `set`, 1→0 costs `reset`.
    SlcDiagonalZero {
        /// Energy of programming a `1`.
        set: f64,
        /// Energy of programming a `0`.
        reset: f64,
    },
}

impl TransitionEnergy {
    /// Detects whether this table admits a bit-parallel cost evaluation.
    fn fast_kind(&self) -> Option<FastEnergy> {
        match self.kind {
            CellKind::Mlc => {
                let low = self.table[0][2];
                let high = self.table[0][1];
                for (old, row) in self.table.iter().enumerate() {
                    for (new, &actual) in row.iter().enumerate() {
                        let expect = if old == new {
                            0.0
                        } else if new & 1 == 1 {
                            high
                        } else {
                            low
                        };
                        if actual != expect {
                            return None;
                        }
                    }
                }
                Some(FastEnergy::MlcByRightDigit { low, high })
            }
            CellKind::Slc => {
                if self.table[0][0] == 0.0 && self.table[1][1] == 0.0 {
                    Some(FastEnergy::SlcDiagonalZero {
                        set: self.table[0][1],
                        reset: self.table[1][0],
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// Write energy objective using a [`TransitionEnergy`] table.
///
/// Stuck cells consume no programming energy (the write driver skips cells
/// the fault repository reports as failed), which matches the paper's
/// accounting where SAW cells are an error/reliability problem rather than
/// an energy one.
#[derive(Debug, Clone)]
pub struct WriteEnergy {
    energies: TransitionEnergy,
    fast: Option<FastEnergy>,
    /// Transition classes compiled once at construction (the per-call
    /// rebuild showed up in encoder profiles).
    class_set: Option<ClassSet>,
}

impl Default for WriteEnergy {
    /// The Table-I MLC objective, with fast-path detection — `fast` must
    /// always be derived from the table, so Default goes through [`new`].
    ///
    /// [`new`]: WriteEnergy::new
    fn default() -> Self {
        Self::new(TransitionEnergy::default())
    }
}

impl WriteEnergy {
    /// Creates an energy objective from a transition table.
    pub fn new(energies: TransitionEnergy) -> Self {
        let fast = energies.fast_kind();
        let mut this = WriteEnergy {
            energies,
            fast,
            class_set: None,
        };
        this.class_set = this.compile_classes();
        this
    }

    /// The Table I MLC PCM energy objective.
    pub fn mlc() -> Self {
        Self::new(TransitionEnergy::mlc_table_i())
    }

    /// The symmetric SLC energy objective.
    pub fn slc() -> Self {
        Self::new(TransitionEnergy::slc_symmetric())
    }

    /// Access to the underlying transition table.
    pub fn energies(&self) -> &TransitionEnergy {
        &self.energies
    }

    /// Per-cell reference evaluation, used for arbitrary tables and as the
    /// oracle the bit-parallel fast path is tested against.
    fn field_cost_generic(&self, field: &Field) -> Cost {
        // SWAR-OK: bits_per_cell() is 1 or 2; the cast cannot truncate.
        let bits_per_cell = self.energies.kind().bits_per_cell() as u32;
        let cells = field.bits / bits_per_cell;
        let cell_mask = (1u64 << bits_per_cell) - 1;
        let mut energy = 0.0;
        for c in 0..cells {
            let shift = c * bits_per_cell;
            let stuck = (field.stuck_mask >> shift) & cell_mask;
            if stuck != 0 {
                // Cell is (partially) stuck: the driver does not program it.
                continue;
            }
            let old = ((field.old >> shift) & cell_mask) as u8;
            let new = ((field.new >> shift) & cell_mask) as u8;
            energy += self.energies.energy(old, new);
        }
        Cost::new(energy)
    }
}

impl CostFunction for WriteEnergy {
    fn name(&self) -> &str {
        match self.energies.kind() {
            CellKind::Mlc => "write-energy-mlc",
            CellKind::Slc => "write-energy-slc",
        }
    }

    fn field_cost(&self, field: &Field) -> Cost {
        // SWAR-OK: bits_per_cell() is 1 or 2; the cast cannot truncate.
        let bits_per_cell = self.energies.kind().bits_per_cell() as u32;
        assert!(
            field.bits.is_multiple_of(bits_per_cell),
            "field of {} bits is not a whole number of {}-bit cells",
            field.bits,
            bits_per_cell
        );
        match self.fast {
            Some(FastEnergy::MlcByRightDigit { low, high }) => {
                let mask = field.bit_mask();
                let new = field.new & mask;
                let diff = (field.new ^ field.old) & mask;
                // Per-cell flags folded onto the right-digit position.
                let right = MLC_RIGHT_DIGITS & mask;
                let changed = (diff | (diff >> 1)) & right;
                let stuck = ((field.stuck_mask | (field.stuck_mask >> 1)) & right) & mask;
                let programmed = changed & !stuck;
                let high_cells = (programmed & new).count_ones();
                let low_cells = (programmed & !new).count_ones();
                Cost::new(high_cells as f64 * high + low_cells as f64 * low)
            }
            Some(FastEnergy::SlcDiagonalZero { set, reset }) => {
                let mask = field.bit_mask();
                let programmed = (field.new ^ field.old) & !field.stuck_mask & mask;
                let sets = (programmed & field.new).count_ones();
                let resets = (programmed & !field.new).count_ones();
                Cost::new(sets as f64 * set + resets as f64 * reset)
            }
            None => self.field_cost_generic(field),
        }
    }

    fn classes(&self) -> Option<ClassSet> {
        self.class_set
    }
}

impl WriteEnergy {
    /// Derives the transition classes from the detected table shape
    /// (see [`CostFunction::classes`]); run once by [`WriteEnergy::new`].
    fn compile_classes(&self) -> Option<ClassSet> {
        match self.fast {
            Some(FastEnergy::MlcByRightDigit { low, high }) => {
                let (low, high) = (integer_unit(low)?, integer_unit(high)?);
                let mut set = ClassSet::single(ClassRule::MlcHigh, high);
                set.push(CostClass {
                    rule: ClassRule::MlcLow,
                    primary: low,
                    secondary: 0,
                });
                Some(set)
            }
            Some(FastEnergy::SlcDiagonalZero { set, reset }) => {
                let (set_u, reset_u) = (integer_unit(set)?, integer_unit(reset)?);
                let mut cs = ClassSet::single(ClassRule::SlcSet, set_u);
                cs.push(CostClass {
                    rule: ClassRule::SlcReset,
                    primary: reset_u,
                    secondary: 0,
                });
                Some(cs)
            }
            None => None,
        }
    }
}

/// Lexicographic combination of two objectives: minimize `primary` first and
/// use `secondary` to break ties.
///
/// The paper's two evaluation modes are `Lexico::new(SawCount, WriteEnergy::mlc())`
/// ("Opt. SAW") and `Lexico::new(WriteEnergy::mlc(), SawCount)` ("Opt. Energy").
#[derive(Debug, Clone)]
pub struct Lexico<P, S> {
    primary: P,
    secondary: S,
    name: String,
    /// Folded transition classes compiled once at construction.
    class_set: Option<ClassSet>,
}

impl<P: CostFunction, S: CostFunction> Lexico<P, S> {
    /// Combines two objectives lexicographically.
    pub fn new(primary: P, secondary: S) -> Self {
        let name = format!("{}-then-{}", primary.name(), secondary.name());
        let mut this = Lexico {
            primary,
            secondary,
            name,
            class_set: None,
        };
        this.class_set = this.compile_classes();
        this
    }

    /// Folds the two objectives' classes (see [`CostFunction::classes`]);
    /// run once by [`Lexico::new`].
    fn compile_classes(&self) -> Option<ClassSet> {
        // Mirror the scalar fold: the primary objective's classes charge the
        // primary component, the secondary objective's classes charge the
        // tie-break component; either side's own secondary is discarded, so
        // nested lexicographic combinations (which would need it) fall back.
        let p = self.primary.classes()?;
        let s = self.secondary.classes()?;
        let mut out = ClassSet::default();
        for c in p.classes() {
            if c.secondary != 0 {
                return None;
            }
            if !out.push(CostClass {
                rule: c.rule,
                primary: c.primary,
                secondary: 0,
            }) {
                return None;
            }
        }
        for c in s.classes() {
            if c.secondary != 0 {
                return None;
            }
            if !out.push(CostClass {
                rule: c.rule,
                primary: 0,
                secondary: c.primary,
            }) {
                return None;
            }
        }
        Some(out)
    }
}

impl<P: CostFunction, S: CostFunction> CostFunction for Lexico<P, S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn field_cost(&self, field: &Field) -> Cost {
        let p = self.primary.field_cost(field);
        let s = self.secondary.field_cost(field);
        // Fold a two-level lexicographic cost: the secondary objective's own
        // secondary component is discarded (it is zero for all built-ins).
        Cost::with_secondary(p.primary, s.primary)
    }

    fn classes(&self) -> Option<ClassSet> {
        self.class_set
    }
}

/// Convenience constructor for the paper's "Opt. SAW" objective:
/// minimize stuck-at-wrong cells first, then MLC write energy.
pub fn opt_saw_then_energy() -> Lexico<SawCount, WriteEnergy> {
    Lexico::new(SawCount, WriteEnergy::mlc())
}

/// Convenience constructor for the paper's "Opt. Energy" objective:
/// minimize MLC write energy first, then stuck-at-wrong cells.
pub fn opt_energy_then_saw() -> Lexico<WriteEnergy, SawCount> {
    Lexico::new(WriteEnergy::mlc(), SawCount)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_is_lexicographic() {
        let a = Cost::with_secondary(1.0, 100.0);
        let b = Cost::with_secondary(2.0, 0.0);
        assert!(a.is_better_than(&b));
        assert!(!b.is_better_than(&a));
        let c = Cost::with_secondary(1.0, 99.0);
        assert!(c.is_better_than(&a));
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn cost_addition_and_sum() {
        let a = Cost::with_secondary(1.0, 2.0);
        let b = Cost::with_secondary(3.0, 4.0);
        let s = a + b;
        assert_eq!(s.primary, 4.0);
        assert_eq!(s.secondary, 6.0);
        let total: Cost = [a, b, Cost::ZERO].into_iter().sum();
        assert_eq!(total.primary, 4.0);
    }

    #[test]
    fn ones_count_masks_width() {
        let f = Field::new(u64::MAX, 0, 10);
        assert_eq!(OnesCount.field_cost(&f).primary, 10.0);
    }

    #[test]
    fn bit_flips_counts_differences() {
        let f = Field::new(0b1100, 0b1010, 4);
        assert_eq!(BitFlips.field_cost(&f).primary, 2.0);
    }

    #[test]
    fn saw_counts_only_wrong_stuck_cells() {
        let f = Field {
            new: 0b1111,
            old: 0,
            stuck_mask: 0b0110,
            stuck_value: 0b0010,
            bits: 4,
        };
        // Bit 1 stuck at 1 and we write 1: fine. Bit 2 stuck at 0 and we
        // write 1: stuck-at-wrong.
        assert_eq!(SawCount.field_cost(&f).primary, 1.0);
        assert_eq!(f.saw_bits(), 1);
        assert_eq!(f.effective_stored(), 0b1011);
    }

    #[test]
    fn table_i_energy_shape() {
        let t = TransitionEnergy::mlc_table_i();
        // Diagonal is free.
        for s in 0..4u8 {
            assert_eq!(t.energy(s, s), 0.0);
        }
        // New right digit 1 => high energy.
        assert_eq!(t.energy(0b00, 0b01), MLC_HIGH_TRANSITION_PJ);
        assert_eq!(t.energy(0b00, 0b11), MLC_HIGH_TRANSITION_PJ);
        assert_eq!(t.energy(0b10, 0b11), MLC_HIGH_TRANSITION_PJ);
        // New right digit 0 => low energy.
        assert_eq!(t.energy(0b00, 0b10), MLC_LOW_TRANSITION_PJ);
        assert_eq!(t.energy(0b01, 0b00), MLC_LOW_TRANSITION_PJ);
        assert_eq!(t.energy(0b11, 0b10), MLC_LOW_TRANSITION_PJ);
        assert!(t.max_energy() >= MLC_HIGH_TRANSITION_PJ);
    }

    #[test]
    fn mlc_energy_cost_sums_cells() {
        let cf = WriteEnergy::mlc();
        // Two symbols: old 00->new 01 (high), old 00 -> new 10 (low).
        let f = Field::new(0b10_01, 0b00_00, 4);
        let c = cf.field_cost(&f);
        assert!((c.primary - (MLC_HIGH_TRANSITION_PJ + MLC_LOW_TRANSITION_PJ)).abs() < 1e-9);
    }

    #[test]
    fn mlc_energy_skips_stuck_cells() {
        let cf = WriteEnergy::mlc();
        let f = Field {
            new: 0b01,
            old: 0b00,
            stuck_mask: 0b11,
            stuck_value: 0b00,
            bits: 2,
        };
        assert_eq!(cf.field_cost(&f).primary, 0.0);
    }

    #[test]
    fn slc_energy_counts_flips() {
        let cf = WriteEnergy::slc();
        let f = Field::new(0b111, 0b001, 3);
        assert!((cf.field_cost(&f).primary - 2.0 * SLC_TRANSITION_PJ).abs() < 1e-9);
    }

    #[test]
    fn lexico_orders_by_primary_then_secondary() {
        let cf = opt_saw_then_energy();
        // Candidate A: no SAW, expensive energy.
        let a = Field {
            new: 0b01,
            old: 0b00,
            stuck_mask: 0,
            stuck_value: 0,
            bits: 2,
        };
        // Candidate B: one SAW, zero energy (stuck cell skipped).
        let b = Field {
            new: 0b01,
            old: 0b01,
            stuck_mask: 0b11,
            stuck_value: 0b00,
            bits: 2,
        };
        let ca = cf.field_cost(&a);
        let cb = cf.field_cost(&b);
        assert!(ca.is_better_than(&cb));
        assert_eq!(cf.name(), "saw-then-write-energy-mlc");
    }

    #[test]
    fn region_cost_matches_manual_sum() {
        let cf = BitFlips;
        let new = [u64::MAX, 0b1];
        let old = [0u64, 0b0];
        let zero = [0u64, 0];
        let c = cf.region_cost(&new, &old, &zero, &zero, 65);
        assert_eq!(c.primary, 65.0);
    }

    #[test]
    fn fast_energy_paths_match_generic_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mlc = WriteEnergy::mlc();
        let slc = WriteEnergy::slc();
        assert!(mlc.fast.is_some(), "Table I must take the fast path");
        assert!(slc.fast.is_some(), "symmetric SLC must take the fast path");
        for _ in 0..2000 {
            let bits = 2 * rng.gen_range(1..=32u32);
            let stuck_mask: u64 = rng.gen::<u64>() & rng.gen::<u64>();
            // MLC stuck cells freeze whole symbols; mirror that in the mask.
            let sym_stuck = {
                let m = stuck_mask & 0x5555_5555_5555_5555;
                m | (m << 1)
            };
            let f = Field {
                new: rng.gen(),
                old: rng.gen(),
                stuck_mask: sym_stuck,
                stuck_value: rng.gen(),
                bits,
            };
            assert_eq!(
                mlc.field_cost(&f).primary,
                mlc.field_cost_generic(&f).primary,
                "MLC fast path diverged on {f:?}"
            );
            let g = Field { stuck_mask, ..f };
            assert_eq!(
                slc.field_cost(&g).primary,
                slc.field_cost_generic(&g).primary,
                "SLC fast path diverged on {g:?}"
            );
        }
        // A lopsided custom MLC table must fall back to the generic loop.
        let mut weird = [[1.0f64; 4]; 4];
        weird[2][3] = 9.0;
        let custom = WriteEnergy::new(TransitionEnergy::custom_mlc(weird));
        assert!(custom.fast.is_none());
    }

    #[test]
    fn fast_mlc_path_handles_partially_stuck_cells_like_generic() {
        // The generic loop skips a cell when ANY of its bits is stuck; the
        // folded stuck mask must reproduce that even for half-stuck masks.
        let mlc = WriteEnergy::mlc();
        let f = Field {
            new: 0b01_01,
            old: 0b00_00,
            stuck_mask: 0b10_00, // left digit of cell 1 stuck only
            stuck_value: 0,
            bits: 4,
        };
        assert_eq!(
            mlc.field_cost(&f).primary,
            mlc.field_cost_generic(&f).primary
        );
        assert_eq!(mlc.field_cost(&f).primary, MLC_HIGH_TRANSITION_PJ);
    }

    #[test]
    fn fixed_cost_packing_orders_lexicographically() {
        let a = FixedCost {
            primary: 1,
            secondary: 1 << 40,
        };
        let b = FixedCost {
            primary: 2,
            secondary: 0,
        };
        assert!(a.packed() < b.packed());
        let c = FixedCost {
            primary: 1,
            secondary: 3,
        };
        assert!(c.packed() < a.packed());
        assert_eq!((a + c).primary, 2);
        let cost = FixedCost {
            primary: 15,
            secondary: 132,
        }
        .to_cost();
        assert_eq!(cost, Cost::with_secondary(15.0, 132.0));
    }

    #[test]
    fn per_field_popcount_all_widths() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let x: u64 = rng.gen();
            for field in [1usize, 2, 4, 8, 16, 32, 64] {
                let counts = per_field_popcount(x, field);
                let mask = if field == 64 {
                    u64::MAX
                } else {
                    (1u64 << field) - 1
                };
                for j in 0..64 / field {
                    let expect = ((x >> (j * field)) & mask).count_ones() as u64;
                    assert_eq!(
                        (counts >> (j * field)) & mask,
                        expect,
                        "field {field} index {j} of {x:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn class_sets_of_builtins() {
        assert_eq!(OnesCount.classes().unwrap().classes().len(), 1);
        assert_eq!(BitFlips.classes().unwrap().classes().len(), 1);
        assert_eq!(SawCount.classes().unwrap().classes().len(), 1);
        let mlc = WriteEnergy::mlc().classes().unwrap();
        assert_eq!(mlc.classes().len(), 2);
        assert_eq!(mlc.cell_bits(), 2);
        assert_eq!(mlc.classes()[0].primary, MLC_HIGH_TRANSITION_PJ as u64);
        assert_eq!(mlc.classes()[1].primary, MLC_LOW_TRANSITION_PJ as u64);
        let slc = WriteEnergy::slc().classes().unwrap();
        assert_eq!(slc.cell_bits(), 1);
        // Lexico folds: primary classes charge primary, secondary classes
        // charge the tie-break component.
        let lex = opt_saw_then_energy().classes().unwrap();
        assert_eq!(lex.classes().len(), 3);
        assert_eq!(lex.classes()[0].rule, ClassRule::Saw);
        assert_eq!(lex.classes()[0].secondary, 0);
        assert!(lex.classes()[1..].iter().all(|c| c.primary == 0));
        // Non-integer custom tables decline the class path.
        let mut frac = [[0.5f64; 4]; 4];
        for (i, row) in frac.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        assert!(WriteEnergy::new(TransitionEnergy::custom_mlc(frac))
            .classes()
            .is_none());
    }

    #[test]
    fn scalar_only_hides_classes_but_delegates_costs() {
        let wrapped = ScalarOnly(WriteEnergy::mlc());
        assert!(wrapped.classes().is_none());
        assert_eq!(wrapped.name(), WriteEnergy::mlc().name());
        let f = Field::new(0b10_01, 0b00_00, 4);
        assert_eq!(wrapped.field_cost(&f), WriteEnergy::mlc().field_cost(&f));
    }

    #[test]
    fn cost_words_matches_region_cost_for_builtins() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(19);
        let fns: Vec<Box<dyn CostFunction>> = vec![
            Box::new(OnesCount),
            Box::new(BitFlips),
            Box::new(SawCount),
            Box::new(WriteEnergy::mlc()),
            Box::new(WriteEnergy::slc()),
            Box::new(opt_saw_then_energy()),
            Box::new(opt_energy_then_saw()),
        ];
        for _ in 0..200 {
            let new = [rng.gen::<u64>(), rng.gen()];
            let old = [rng.gen::<u64>(), rng.gen()];
            let mut sym_mask = || {
                let m = rng.gen::<u64>() & rng.gen::<u64>() & 0x5555_5555_5555_5555;
                m | (m << 1)
            };
            let sm = [sym_mask(), sym_mask()];
            let sv = [rng.gen::<u64>(), rng.gen()];
            for bits in [64usize, 100, 128] {
                for cf in &fns {
                    assert_eq!(
                        cf.cost_words(&new, &old, &sm, &sv, bits),
                        cf.region_cost(&new, &old, &sm, &sv, bits),
                        "{} over {bits} bits",
                        cf.name()
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_fields_bound_check() {
        let mlc = WriteEnergy::mlc().classes().unwrap();
        // 16-bit fields hold 8 cells × 132 pJ comfortably; 8-bit fields
        // cannot hold 4 × 132.
        assert!(mlc.weighted_fields_fit(16));
        assert!(!mlc.weighted_fields_fit(8));
        let ones = OnesCount.classes().unwrap();
        assert!(ones.weighted_fields_fit(8));
    }

    #[test]
    fn custom_tables() {
        let slc = TransitionEnergy::custom_slc([[0.0, 5.0], [7.0, 0.0]]);
        assert_eq!(slc.energy(0, 1), 5.0);
        assert_eq!(slc.energy(1, 0), 7.0);
        let mut m = [[1.0f64; 4]; 4];
        m[2][3] = 9.0;
        let mlc = TransitionEnergy::custom_mlc(m);
        assert_eq!(mlc.energy(2, 3), 9.0);
    }
}
