//! Fixed-width bit blocks used throughout the coset coding pipeline.
//!
//! A [`Block`] is a little-endian bit container backed by `u64` words. Data
//! blocks in the paper are 64 bits (one machine word of the protected
//! memory), cache lines are 512 bits, and coset kernels are 8–32 bits; the
//! same container serves all of them.
//!
//! Bit `0` is the least-significant bit of word `0`. For multi-level cells
//! (MLC), symbol `s` occupies bits `2s` (right/low digit) and `2s + 1`
//! (left/high digit); see [`crate::symbol`].

use std::fmt;

/// A fixed-length block of bits backed by `u64` words.
///
/// # Examples
///
/// ```
/// use coset::Block;
///
/// let mut b = Block::zeros(64);
/// b.set_bit(3, true);
/// assert_eq!(b.count_ones(), 1);
/// assert!(b.bit(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    words: Vec<u64>,
    len: usize,
}

impl Block {
    /// Creates an all-zero block of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn zeros(len: usize) -> Self {
        assert!(len > 0, "block length must be non-zero");
        let n_words = len.div_ceil(64);
        Block {
            words: vec![0u64; n_words],
            len,
        }
    }

    /// Creates an all-one block of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Self::zeros(len);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Creates a block of `len` bits from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `len == 0`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len > 0 && len <= 64, "from_u64 requires 1..=64 bits");
        let mut b = Self::zeros(len);
        b.words[0] = if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        };
        b
    }

    /// Creates a block from a slice of little-endian `u64` words.
    ///
    /// # Panics
    ///
    /// Panics if `words` does not contain enough bits for `len`.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(len > 0, "block length must be non-zero");
        assert!(
            words.len() * 64 >= len,
            "not enough words ({}) for {} bits",
            words.len(),
            len
        );
        let n_words = len.div_ceil(64);
        let mut b = Block {
            words: words[..n_words].to_vec(),
            len,
        };
        b.mask_tail();
        b
    }

    /// Creates a block of `len` bits filled from the random number generator.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut b = Self::zeros(len);
        for w in &mut b.words {
            *w = rng.gen();
        }
        b.mask_tail();
        b
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation —
    /// the in-place counterpart of `clone` used by the zero-allocation
    /// encoding sessions. Allocates only when `self`'s capacity is smaller
    /// than `other`'s word count (a straight `memcpy` otherwise).
    pub fn copy_from(&mut self, other: &Block) {
        self.words.resize(other.words.len(), 0);
        self.words.copy_from_slice(&other.words);
        self.len = other.len;
    }

    /// Makes `self` the word-wise XOR of `a` and `b` (`self = a ^ b`),
    /// reusing the existing allocation — the single-pass candidate
    /// materialization of the broadcast coset search (`data ^ coset`).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn xor_words_from(&mut self, a: &Block, b: &Block) {
        assert_eq!(a.len, b.len, "xor_words_from length mismatch");
        self.words.resize(a.words.len(), 0);
        for (out, (x, y)) in self
            .words
            .iter_mut()
            .zip(a.words.iter().zip(b.words.iter()))
        {
            *out = x ^ y;
        }
        self.len = a.len;
    }

    /// Overwrites the bits of backing word `idx` selected by `mask` with
    /// the corresponding bits of `value`, leaving the rest untouched — the
    /// masked-insert primitive of the broadcast candidate search.
    ///
    /// The caller must keep bits above `len()` zero (i.e. `mask` must not
    /// select tail bits beyond the block length).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn insert_word_masked(&mut self, idx: usize, value: u64, mask: u64) {
        let w = &mut self.words[idx];
        *w = (*w & !mask) | (value & mask);
    }

    /// Resizes `self` to `len` bits and clears every bit, reusing the
    /// existing allocation where possible.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn reset_zeros(&mut self, len: usize) {
        assert!(len > 0, "block length must be non-zero");
        let n_words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(n_words, 0);
        self.len = len;
    }

    /// Makes `self` a `len`-bit block holding the low bits of `value`,
    /// reusing the existing allocation (the in-place [`Block::from_u64`]).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `len == 0`.
    pub fn set_from_u64(&mut self, value: u64, len: usize) {
        assert!(len > 0 && len <= 64, "set_from_u64 requires 1..=64 bits");
        self.reset_zeros(len);
        self.words[0] = if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        };
    }

    /// Length of the block in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the block holds zero bits. Blocks are never empty,
    /// so this always returns `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the backing words (little-endian bit order).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutably borrows the backing words. The caller must keep bits above
    /// `len()` zero; use [`Block::mask_tail`] afterwards when unsure.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits at positions `>= len` in the last backing word.
    pub fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn bit(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn set_bit(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let w = idx / 64;
        let o = idx % 64;
        if value {
            self.words[w] |= 1u64 << o;
        } else {
            self.words[w] &= !(1u64 << o);
        }
    }

    /// Flips bit `idx`.
    #[inline]
    pub fn toggle_bit(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] ^= 1u64 << (idx % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of positions where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming_distance(&self, other: &Block) -> u32 {
        assert_eq!(self.len, other.len, "hamming_distance length mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Block) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
    }

    /// Returns `self XOR other` as a new block.
    pub fn xor(&self, other: &Block) -> Block {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Inverts every bit in place.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns the bitwise complement.
    pub fn inverted(&self) -> Block {
        let mut out = self.clone();
        out.invert();
        out
    }

    /// Extracts `width` bits starting at bit `start` into the low bits of a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `width > 64`, or the range exceeds the block.
    pub fn extract(&self, start: usize, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "extract width must be 1..=64");
        assert!(
            start + width <= self.len,
            "extract range {start}..{} exceeds block length {}",
            start + width,
            self.len
        );
        let w = start / 64;
        let o = start % 64;
        // SWAR-OK: the aligned value is masked to `width` bits below before
        // it is returned; bits shifted in from the next field are discarded.
        let lo = self.words[w] >> o;
        let val = if o + width <= 64 {
            lo
        } else {
            lo | (self.words[w + 1] << (64 - o))
        };
        if width == 64 {
            val
        } else {
            val & ((1u64 << width) - 1)
        }
    }

    /// Writes the low `width` bits of `value` into the block starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `width > 64`, or the range exceeds the block.
    pub fn insert(&mut self, start: usize, width: usize, value: u64) {
        assert!(width > 0 && width <= 64, "insert width must be 1..=64");
        assert!(
            start + width <= self.len,
            "insert range {start}..{} exceeds block length {}",
            start + width,
            self.len
        );
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        let w = start / 64;
        let o = start % 64;
        if o + width <= 64 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                // SWAR-OK: positions the width-bit mask at offset o; the
                // insert below applies it with & before writing.
                ((1u64 << width) - 1) << o
            };
            self.words[w] = (self.words[w] & !mask) | (value << o);
        } else {
            let lo_bits = 64 - o;
            let hi_bits = width - lo_bits;
            let lo_mask = u64::MAX << o;
            self.words[w] = (self.words[w] & !lo_mask) | (value << o);
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (value >> lo_bits);
        }
    }

    /// Returns a new block consisting of bits `start .. start + width`.
    pub fn slice(&self, start: usize, width: usize) -> Block {
        assert!(width > 0, "slice width must be non-zero");
        assert!(
            start + width <= self.len,
            "slice range exceeds block length"
        );
        let mut out = Block::zeros(width);
        let mut done = 0;
        while done < width {
            let chunk = (width - done).min(64);
            let v = self.extract(start + done, chunk);
            out.insert(done, chunk, v);
            done += chunk;
        }
        out
    }

    /// Overwrites bits `start .. start + other.len()` with `other`.
    pub fn splice(&mut self, start: usize, other: &Block) {
        assert!(
            start + other.len <= self.len,
            "splice range exceeds block length"
        );
        let mut done = 0;
        while done < other.len {
            let chunk = (other.len - done).min(64);
            let v = other.extract(done, chunk);
            self.insert(start + done, chunk, v);
            done += chunk;
        }
    }

    /// Returns the block as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the block is wider than 64 bits.
    pub fn as_u64(&self) -> u64 {
        assert!(self.len <= 64, "block wider than 64 bits");
        self.words[0]
    }

    /// Iterator over the bits, LSB first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }

    /// Concatenates two blocks (`self` occupies the low bits).
    pub fn concat(&self, other: &Block) -> Block {
        let mut out = Block::zeros(self.len + other.len);
        out.splice(0, self);
        out.splice(self.len, other);
        out
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block[{}b ", self.len)?;
        // MSB-first rendering, matching the paper's figures.
        for i in (0..self.len).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
            if i != 0 && i % 16 == 0 {
                write!(f, "_")?;
            }
        }
        write!(f, "]")
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Parses a block from an MSB-first string of `0`/`1` characters, ignoring
/// whitespace and underscores. Used by tests mirroring the paper's Figure 3.
///
/// # Examples
///
/// ```
/// use coset::block::parse_bits;
/// let b = parse_bits("1010");
/// assert_eq!(b.len(), 4);
/// assert_eq!(b.as_u64(), 0b1010);
/// ```
pub fn parse_bits(s: &str) -> Block {
    let digits: Vec<bool> = s
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '_')
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid bit character {other:?}"),
        })
        .collect();
    assert!(!digits.is_empty(), "empty bit string");
    let mut b = Block::zeros(digits.len());
    let n = digits.len();
    for (i, bit) in digits.iter().enumerate() {
        // First character is the most significant bit.
        b.set_bit(n - 1 - i, *bit);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = Block::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        let o = Block::ones(100);
        assert_eq!(o.count_ones(), 100);
    }

    #[test]
    fn from_u64_masks_value() {
        let b = Block::from_u64(0xFFFF_FFFF_FFFF_FFFF, 10);
        assert_eq!(b.count_ones(), 10);
        assert_eq!(b.as_u64(), 0x3FF);
    }

    #[test]
    fn set_and_get_bits() {
        let mut b = Block::zeros(130);
        b.set_bit(0, true);
        b.set_bit(64, true);
        b.set_bit(129, true);
        assert!(b.bit(0));
        assert!(b.bit(64));
        assert!(b.bit(129));
        assert!(!b.bit(1));
        assert_eq!(b.count_ones(), 3);
        b.set_bit(64, false);
        assert_eq!(b.count_ones(), 2);
        b.toggle_bit(64);
        assert!(b.bit(64));
    }

    #[test]
    fn xor_and_hamming() {
        let a = Block::from_u64(0b1100, 4);
        let b = Block::from_u64(0b1010, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        let c = a.xor(&b);
        assert_eq!(c.as_u64(), 0b0110);
    }

    #[test]
    fn invert_respects_length() {
        let a = Block::from_u64(0b101, 3);
        let inv = a.inverted();
        assert_eq!(inv.as_u64(), 0b010);
        assert_eq!(inv.count_ones(), 1);
    }

    #[test]
    fn extract_insert_within_word() {
        let mut b = Block::zeros(64);
        b.insert(4, 8, 0xAB);
        assert_eq!(b.extract(4, 8), 0xAB);
        assert_eq!(b.extract(0, 4), 0);
        assert_eq!(b.extract(12, 8), 0x0);
    }

    #[test]
    fn extract_insert_across_word_boundary() {
        let mut b = Block::zeros(128);
        b.insert(60, 16, 0xBEEF);
        assert_eq!(b.extract(60, 16), 0xBEEF);
        // Check bits landed on both words.
        assert_ne!(b.words()[0], 0);
        assert_ne!(b.words()[1], 0);
    }

    #[test]
    fn slice_and_splice_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = Block::random(&mut rng, 512);
        let s = b.slice(100, 200);
        let mut c = Block::zeros(512);
        c.splice(100, &s);
        assert_eq!(c.extract(100, 64), b.extract(100, 64));
        assert_eq!(c.extract(236, 64), b.extract(236, 64));
    }

    #[test]
    fn concat_orders_low_then_high() {
        let lo = Block::from_u64(0b01, 2);
        let hi = Block::from_u64(0b11, 2);
        let c = lo.concat(&hi);
        assert_eq!(c.len(), 4);
        assert_eq!(c.as_u64(), 0b1101);
    }

    #[test]
    fn parse_bits_msb_first() {
        let b = parse_bits("1010_0010 11011011");
        assert_eq!(b.len(), 16);
        assert_eq!(b.as_u64(), 0b1010001011011011);
    }

    #[test]
    fn display_roundtrips_with_parse() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Block::random(&mut rng, 77);
        let s = format!("{b}");
        let back = parse_bits(&s);
        assert_eq!(b, back);
    }

    #[test]
    fn random_respects_tail_mask() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 7, 63, 64, 65, 100, 127, 128, 129] {
            let b = Block::random(&mut rng, len);
            // No bits above `len` should be set.
            let total: u32 = b.words().iter().map(|w| w.count_ones()).sum();
            assert_eq!(total, b.count_ones());
            assert!(b.count_ones() as usize <= len);
        }
    }

    #[test]
    fn copy_from_reuses_allocation_and_tracks_length() {
        let mut rng = StdRng::seed_from_u64(11);
        let big = Block::random(&mut rng, 512);
        let small = Block::random(&mut rng, 40);
        let mut buf = Block::zeros(1);
        buf.copy_from(&big);
        assert_eq!(buf, big);
        let cap_after_big = buf.words.capacity();
        // Shrinking to a smaller block must not reallocate, and growing
        // back within the retained capacity must not either.
        buf.copy_from(&small);
        assert_eq!(buf, small);
        assert_eq!(buf.words.capacity(), cap_after_big);
        buf.copy_from(&big);
        assert_eq!(buf, big);
        assert_eq!(buf.words.capacity(), cap_after_big);
    }

    #[test]
    fn xor_words_from_matches_xor() {
        let mut rng = StdRng::seed_from_u64(12);
        for len in [40usize, 64, 128, 512] {
            let a = Block::random(&mut rng, len);
            let b = Block::random(&mut rng, len);
            let mut out = Block::zeros(1);
            out.xor_words_from(&a, &b);
            assert_eq!(out, a.xor(&b), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_words_from_rejects_mismatched_lengths() {
        let a = Block::zeros(64);
        let b = Block::zeros(32);
        Block::zeros(1).xor_words_from(&a, &b);
    }

    #[test]
    fn insert_word_masked_touches_only_masked_bits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(13);
        let orig = Block::random(&mut rng, 128);
        let mut b = orig.clone();
        let mask = 0x0000_FFFF_0000_FFFFu64;
        let value = rng.gen::<u64>();
        b.insert_word_masked(1, value, mask);
        assert_eq!(b.words()[0], orig.words()[0]);
        assert_eq!(b.words()[1], (orig.words()[1] & !mask) | (value & mask));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let b = Block::zeros(8);
        let _ = b.bit(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = Block::zeros(8);
        let b = Block::zeros(9);
        a.xor_assign(&b);
    }
}
