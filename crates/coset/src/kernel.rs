//! Coset kernels and the runtime kernel generator (Algorithm 2).
//!
//! A *kernel* is a short random bit string (`m` bits, typically 8–32).
//! VCC concatenates a kernel or its complement across the partitions of a
//! data block to form a full-length "virtual" coset candidate, so `r`
//! kernels stand in for `N = r · 2^p` stored cosets.
//!
//! Kernels can either be pre-generated and stored in a small ROM
//! ("VCC-Stored" in the paper) or derived at run time from the
//! energy-insensitive left digits of the encrypted MLC data block
//! (Algorithm 2), which removes the need to protect the kernel ROM from
//! disclosure.

use rand::Rng;

use crate::block::Block;

/// A set of `m`-bit coset kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSet {
    kernel_bits: usize,
    kernels: Vec<u64>,
    /// Per-kernel broadcast words (the kernel repeated across a full 64-bit
    /// word), precomputed whenever the kernel width divides 64. The
    /// broadcast-SWAR candidate search forms a whole block's worth of
    /// coset candidate with one XOR per word against these; empty when the
    /// width does not tile a word (callers then use the scalar path).
    broadcasts: Vec<u64>,
}

impl Default for KernelSet {
    /// An empty placeholder used as a reusable scratch buffer for
    /// [`generate_kernels_into`]; not a valid kernel set until regenerated.
    fn default() -> Self {
        KernelSet {
            kernel_bits: 1,
            kernels: Vec::new(),
            broadcasts: Vec::new(),
        }
    }
}

/// Repeats the low `m` bits of `value` across a 64-bit word.
///
/// # Panics
///
/// Panics (in debug builds) unless `m` divides 64.
#[inline]
pub fn broadcast_word(value: u64, m: usize) -> u64 {
    debug_assert!(m > 0 && 64 % m == 0, "broadcast width must divide 64");
    let masked = if m >= 64 {
        value
    } else {
        value & ((1u64 << m) - 1)
    };
    let mut out = 0u64;
    let mut pos = 0;
    while pos < 64 {
        out |= masked << pos;
        pos += m;
    }
    out
}

impl KernelSet {
    /// Builds a kernel set from explicit kernel values (low `kernel_bits`
    /// bits of each entry are significant).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty, `kernel_bits` is 0 or > 64, or the
    /// kernel count is not a power of two.
    pub fn new(kernel_bits: usize, kernels: Vec<u64>) -> Self {
        assert!(!kernels.is_empty(), "at least one kernel required");
        assert!(
            kernel_bits > 0 && kernel_bits <= 64,
            "kernel width must be 1..=64 bits"
        );
        assert!(
            kernels.len().is_power_of_two(),
            "kernel count must be a power of two"
        );
        let mask = Self::mask_for(kernel_bits);
        let kernels: Vec<u64> = kernels.into_iter().map(|k| k & mask).collect();
        let broadcasts = Self::broadcasts_for(kernel_bits, &kernels);
        KernelSet {
            kernel_bits,
            kernels,
            broadcasts,
        }
    }

    fn broadcasts_for(kernel_bits: usize, kernels: &[u64]) -> Vec<u64> {
        if 64 % kernel_bits == 0 {
            kernels
                .iter()
                .map(|&k| broadcast_word(k, kernel_bits))
                .collect()
        } else {
            Vec::new()
        }
    }

    /// Generates `count` uniformly random kernels of `kernel_bits` bits
    /// (the stored-ROM variant).
    pub fn random<R: Rng + ?Sized>(kernel_bits: usize, count: usize, rng: &mut R) -> Self {
        let mask = Self::mask_for(kernel_bits);
        let kernels = (0..count).map(|_| rng.gen::<u64>() & mask).collect();
        Self::new(kernel_bits, kernels)
    }

    fn mask_for(bits: usize) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }

    /// Kernel width in bits (`m`).
    pub fn kernel_bits(&self) -> usize {
        self.kernel_bits
    }

    /// Number of kernels (`r`).
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Kernel `i` (low `kernel_bits` bits).
    pub fn kernel(&self, i: usize) -> u64 {
        self.kernels[i]
    }

    /// The bitwise complement of kernel `i`, masked to the kernel width.
    pub fn kernel_complement(&self, i: usize) -> u64 {
        !self.kernels[i] & Self::mask_for(self.kernel_bits)
    }

    /// All kernels as a slice.
    pub fn kernels(&self) -> &[u64] {
        &self.kernels
    }

    /// Whether per-kernel broadcast words are available (the kernel width
    /// divides 64, so kernels tile a 64-bit word).
    pub fn has_broadcasts(&self) -> bool {
        !self.broadcasts.is_empty()
    }

    /// Kernel `i` repeated across a full 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if broadcasts are unavailable ([`KernelSet::has_broadcasts`]).
    #[inline]
    pub fn broadcast(&self, i: usize) -> u64 {
        self.broadcasts[i]
    }

    /// Number of auxiliary bits needed to name a kernel.
    pub fn index_bits(&self) -> u32 {
        self.kernels.len().trailing_zeros()
    }

    /// Expands the kernel set into the full list of `r · 2^p` virtual coset
    /// candidates over `p` partitions, mainly for testing the equivalence
    /// between VCC and explicit RCC over the virtual candidates.
    pub fn virtual_cosets(&self, partitions: usize) -> Vec<Block> {
        let m = self.kernel_bits;
        let n = m * partitions;
        // SWAR-OK: capacity arithmetic (r * 2^p candidates), not lane math.
        let mut out = Vec::with_capacity(self.kernels.len() << partitions);
        for i in 0..self.kernels.len() {
            for flags in 0u64..(1u64 << partitions) {
                let mut v = Block::zeros(n);
                for j in 0..partitions {
                    let k = if (flags >> j) & 1 == 1 {
                        self.kernel_complement(i)
                    } else {
                        self.kernel(i)
                    };
                    v.insert(j * m, m, k);
                }
                out.push(v);
            }
        }
        out
    }
}

/// Configuration of the Algorithm 2 runtime kernel generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Kernel width `m` in bits.
    pub kernel_bits: usize,
    /// Number of kernels `r` to derive.
    pub num_kernels: usize,
}

impl GeneratorConfig {
    /// Creates a generator configuration.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero, `kernel_bits > 64`, or
    /// `num_kernels` is not a power of two.
    pub fn new(kernel_bits: usize, num_kernels: usize) -> Self {
        assert!(kernel_bits > 0 && kernel_bits <= 64);
        assert!(num_kernels.is_power_of_two() && num_kernels >= 1);
        GeneratorConfig {
            kernel_bits,
            num_kernels,
        }
    }
}

/// Algorithm 2: derives `r` `m`-bit kernels from a seed bit vector `L`
/// (the left digits of the encrypted data block).
///
/// The seed is split into `b = L.len() / m` base vectors; `r / b` variants of
/// each base vector are produced by XORing it with a short unique mask
/// (`1 + log2(r/b)` bits) repeated across the vector. The extra mask bit
/// keeps the generated vectors from being complements of one another.
///
/// If the seed provides more base vectors than kernels requested, only the
/// first `r` base vectors are used. If `r` is not a multiple of `b`, the
/// remainder is filled by continuing the mask sequence on the leading base
/// vectors.
///
/// # Panics
///
/// Panics if the seed is shorter than one kernel width.
pub fn generate_kernels(seed: &Block, config: GeneratorConfig) -> KernelSet {
    let mut out = KernelSet {
        kernel_bits: config.kernel_bits,
        kernels: Vec::with_capacity(config.num_kernels),
        broadcasts: Vec::new(),
    };
    generate_kernels_into(seed, config, &mut out);
    out
}

/// In-place variant of [`generate_kernels`]: regenerates the kernel set into
/// `out`, reusing its allocation. This is what the zero-allocation encoding
/// sessions use — the generated-kernel VCC encoder reruns Algorithm 2 on
/// every write.
///
/// # Panics
///
/// Panics if the seed is shorter than one kernel width.
pub fn generate_kernels_into(seed: &Block, config: GeneratorConfig, out: &mut KernelSet) {
    let m = config.kernel_bits;
    let r = config.num_kernels;
    assert!(
        seed.len() >= m,
        "seed of {} bits cannot produce {m}-bit kernels",
        seed.len()
    );
    let b = (seed.len() / m).max(1);

    // Number of variants needed per base vector (rounded up), and the mask
    // width with the extra anti-complement bit.
    let variants_per_base = r.div_ceil(b);
    let mask_bits = 1 + ceil_log2(variants_per_base.max(1));

    out.kernel_bits = m;
    out.kernels.clear();
    out.kernels.reserve(r);
    'outer: for i in 0..variants_per_base.max(1) {
        let mask = repeat_mask(i as u64, mask_bits, m);
        for j in 0..b {
            if out.kernels.len() == r {
                break 'outer;
            }
            // Base vector j occupies bits [j*m, (j+1)*m) of the seed.
            out.kernels.push(seed.extract(j * m, m) ^ mask);
        }
    }
    // Runtime-generated sets carry no broadcast words: the generated-kernel
    // encoder builds its symbol-domain broadcasts directly from `kernel()`
    // (and the decoder never needs them), so regenerating the word-domain
    // vector here would be dead work on the per-write hot path.
    out.broadcasts.clear();
}

/// Repeats the low `mask_bits` bits of `mask` across an `m`-bit word.
fn repeat_mask(mask: u64, mask_bits: usize, m: usize) -> u64 {
    let mask = mask & ((1u64 << mask_bits) - 1);
    let mut out = 0u64;
    let mut pos = 0;
    while pos < m {
        out |= mask << pos;
        pos += mask_bits;
    }
    if m >= 64 {
        out
    } else {
        out & ((1u64 << m) - 1)
    }
}

/// Ceiling of log2 for positive integers; `ceil_log2(1) == 0`.
pub fn ceil_log2(x: usize) -> usize {
    assert!(x > 0, "ceil_log2 of zero");
    (usize::BITS - (x - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::parse_bits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn kernel_set_basics() {
        let ks = KernelSet::new(8, vec![0xAB, 0xFF, 0x00, 0x12]);
        assert_eq!(ks.kernel_bits(), 8);
        assert_eq!(ks.len(), 4);
        assert!(!ks.is_empty());
        assert_eq!(ks.kernel(0), 0xAB);
        assert_eq!(ks.kernel_complement(0), 0x54);
        assert_eq!(ks.kernel_complement(1), 0x00);
        assert_eq!(ks.index_bits(), 2);
    }

    #[test]
    fn random_kernels_are_masked() {
        let mut rng = StdRng::seed_from_u64(30);
        let ks = KernelSet::random(10, 16, &mut rng);
        for i in 0..ks.len() {
            assert!(ks.kernel(i) < (1 << 10));
        }
    }

    #[test]
    fn virtual_cosets_enumerate_all_candidates() {
        let ks = KernelSet::new(4, vec![0b1010, 0b0011]);
        let cosets = ks.virtual_cosets(2);
        // 2 kernels × 2^2 flag patterns = 8 candidates of 8 bits.
        assert_eq!(cosets.len(), 8);
        assert!(cosets.iter().all(|c| c.len() == 8));
        // Candidate with flags=00 for kernel 0 is kernel repeated.
        assert_eq!(cosets[0].as_u64(), 0b1010_1010);
        // Candidate with flags=01 inverts partition 0 only.
        assert_eq!(cosets[1].as_u64(), 0b1010_0101);
        // flags=10 inverts partition 1 only.
        assert_eq!(cosets[2].as_u64(), 0b0101_1010);
        // flags=11 inverts both.
        assert_eq!(cosets[3].as_u64(), 0b0101_0101);
    }

    #[test]
    fn paper_section_iv_b_example() {
        // Section IV-B: 32 left digits divided into two base vectors
        // '1101101100000100' and '0001000011000011'; with r = 4, m = 16,
        // b = 2, masks 00 and 01, the four generated vectors are:
        // '1101101100000100', '1000111001010001',
        // '0001000011000011', '0100010110010110'.
        let base0 = parse_bits("1101101100000100");
        let base1 = parse_bits("0001000011000011");
        // Seed layout: base vector j occupies bits [j*m, (j+1)*m).
        let seed = base0.concat(&base1);
        let ks = generate_kernels(&seed, GeneratorConfig::new(16, 4));
        assert_eq!(ks.len(), 4);
        let expect: Vec<u64> = [
            "1101101100000100",
            "0001000011000011",
            "1000111001010001",
            "0100010110010110",
        ]
        .iter()
        .map(|s| parse_bits(s).as_u64())
        .collect();
        // Algorithm 2 emits mask-major order: (M0^base0, M0^base1, M1^base0,
        // M1^base1).
        assert_eq!(ks.kernels(), expect.as_slice());
    }

    #[test]
    fn generator_handles_more_kernels_than_bases() {
        let mut rng = StdRng::seed_from_u64(31);
        let seed = Block::random(&mut rng, 32);
        let ks = generate_kernels(&seed, GeneratorConfig::new(8, 16));
        assert_eq!(ks.len(), 16);
        assert_eq!(ks.kernel_bits(), 8);
        // All kernels fit the width.
        assert!(ks.kernels().iter().all(|k| *k < 256));
    }

    #[test]
    fn generator_is_deterministic_in_seed() {
        let mut rng = StdRng::seed_from_u64(32);
        let seed = Block::random(&mut rng, 32);
        let a = generate_kernels(&seed, GeneratorConfig::new(8, 8));
        let b = generate_kernels(&seed, GeneratorConfig::new(8, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn generated_kernels_avoid_complement_pairs() {
        // The extra mask bit guarantees no two kernels derived from the same
        // base vector are complements of each other.
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let seed = Block::random(&mut rng, 32);
            let ks = generate_kernels(&seed, GeneratorConfig::new(16, 4));
            let b = 2; // two base vectors of 16 bits
            for i in 0..ks.len() {
                for j in (i + 1)..ks.len() {
                    if i % b == j % b {
                        assert_ne!(
                            ks.kernel(i),
                            ks.kernel_complement(j),
                            "kernels {i} and {j} are complements"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_word_repeats_kernel() {
        assert_eq!(broadcast_word(0xAB, 8), 0xABAB_ABAB_ABAB_ABAB);
        assert_eq!(broadcast_word(0xBEEF, 16), 0xBEEF_BEEF_BEEF_BEEF);
        assert_eq!(broadcast_word(0x1, 32), 0x0000_0001_0000_0001);
        assert_eq!(broadcast_word(u64::MAX, 64), u64::MAX);
        // The value is masked to the kernel width first.
        assert_eq!(broadcast_word(0x1FF, 8), 0xFFFF_FFFF_FFFF_FFFF);
    }

    #[test]
    fn kernel_set_precomputes_broadcasts() {
        let ks = KernelSet::new(16, vec![0xAAAA, 0x1234]);
        assert!(ks.has_broadcasts());
        assert_eq!(ks.broadcast(0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(ks.broadcast(1), 0x1234_1234_1234_1234);
        // Widths that do not tile a word provide no broadcasts.
        let odd = KernelSet::new(24, vec![0x0, 0x1]);
        assert!(!odd.has_broadcasts());
    }

    #[test]
    fn generated_kernels_carry_no_stale_broadcasts() {
        let mut rng = StdRng::seed_from_u64(35);
        // A stored set has broadcasts; regenerating into it must clear
        // them (nothing consumes broadcasts of runtime-generated sets, and
        // stale stored-set values would be wrong).
        let mut out = KernelSet::random(8, 8, &mut rng);
        assert!(out.has_broadcasts());
        let seed = Block::random(&mut rng, 32);
        generate_kernels_into(&seed, GeneratorConfig::new(8, 8), &mut out);
        assert!(!out.has_broadcasts());
    }

    #[test]
    #[should_panic(expected = "cannot produce")]
    fn generator_rejects_short_seed() {
        let seed = Block::zeros(4);
        generate_kernels(&seed, GeneratorConfig::new(8, 2));
    }
}
