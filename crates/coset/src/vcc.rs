//! Virtual Coset Coding (VCC) — the paper's primary contribution.
//!
//! VCC(n, N, r) approximates RCC(n, N) by building its coset candidates out
//! of `r` short kernels (Algorithm 1). The data block is divided into `p`
//! partitions; every kernel is XORed and XNORed with each partition in
//! parallel, the cheaper of the two forms is kept per partition, and the
//! best kernel overall wins. The auxiliary word stores the kernel index plus
//! one "complement" flag per partition — `log2(r) + p = log2(N)` bits, the
//! same auxiliary budget as RCC(n, N).
//!
//! Two operating modes are provided:
//!
//! * [`VccMode::FullBlock`] — the textbook Algorithm 1 over the whole block,
//!   with kernels taken from a stored set (the "VCC-Stored" hardware variant
//!   and the Figure 3 worked example).
//! * [`VccMode::MlcGenerated`] — the MLC deployment of Sections IV-B/V-B:
//!   the energy-insensitive *left* digits of the encrypted block pass
//!   through unmodified and seed the Algorithm 2 kernel generator, while the
//!   energy-determining *right* digits are coset-encoded. Decoding first
//!   recovers the kernels from the stored (unmodified) left digits, so no
//!   kernel ROM is needed and the kernels cannot be learned without the
//!   plaintext.

use rand::Rng;

use crate::block::Block;
use crate::context::{CostModel, WriteContext};
use crate::cost::{Cost, CostFunction, FixedCost};
use crate::encoder::{EncodeScratch, Encoded, Encoder};
use crate::kernel::{
    ceil_log2, generate_kernels, generate_kernels_into, GeneratorConfig, KernelSet,
};
use crate::symbol::{
    extract_left_digits, extract_left_digits_into, extract_right_digits, extract_right_digits_into,
    interleave_digits, interleave_digits_into, interleave_word, spread_to_right_digits,
    MLC_RIGHT_DIGITS,
};

/// How a [`Vcc`] instance obtains kernels and which bits it encodes.
#[derive(Debug, Clone)]
pub enum VccMode {
    /// Encode the full block using a stored kernel set.
    FullBlock {
        /// The pre-generated kernels (the paper's optional ROM unit).
        kernels: KernelSet,
    },
    /// Encode only the right (low) digit of every MLC symbol; generate the
    /// kernels from the block's left digits with Algorithm 2 at both encode
    /// and decode time.
    MlcGenerated {
        /// Kernel generator parameters (kernel width, kernel count).
        config: GeneratorConfig,
    },
}

/// Virtual Coset Coding encoder.
///
/// # Examples
///
/// ```
/// use coset::{Vcc, Block, WriteContext, Encoder, cost::WriteEnergy};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// // VCC(64, 256, 16): 16 stored kernels of 16 bits, 4 partitions.
/// let vcc = Vcc::stored(64, 16, 16, &mut rng);
/// assert_eq!(vcc.num_virtual_cosets(), 256);
/// let data = Block::random(&mut rng, 64);
/// let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits());
/// let enc = vcc.encode(&data, &ctx, &WriteEnergy::mlc());
/// assert_eq!(vcc.decode(&enc.codeword, enc.aux), data);
/// ```
#[derive(Debug, Clone)]
pub struct Vcc {
    block_bits: usize,
    kernel_bits: usize,
    num_kernels: usize,
    partitions: usize,
    mode: VccMode,
    name: String,
}

impl Vcc {
    /// VCC with a stored kernel ROM over the full block ("VCC-Stored").
    ///
    /// `block_bits` = n, `kernel_bits` = m, `num_kernels` = r; the number of
    /// virtual cosets is `N = r · 2^(n/m)`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_bits` does not divide `block_bits`, if
    /// `num_kernels` is not a power of two, or if `block_bits / kernel_bits`
    /// exceeds 63 (the flag field must fit an aux word).
    pub fn stored<R: Rng + ?Sized>(
        block_bits: usize,
        kernel_bits: usize,
        num_kernels: usize,
        rng: &mut R,
    ) -> Self {
        let kernels = KernelSet::random(kernel_bits, num_kernels, rng);
        Self::with_kernels(block_bits, kernels)
    }

    /// VCC over the full block with an explicit kernel set.
    pub fn with_kernels(block_bits: usize, kernels: KernelSet) -> Self {
        let kernel_bits = kernels.kernel_bits();
        let num_kernels = kernels.len();
        assert!(
            block_bits.is_multiple_of(kernel_bits),
            "kernel width {kernel_bits} must divide block width {block_bits}"
        );
        let partitions = block_bits / kernel_bits;
        assert!(partitions < 64, "too many partitions for one aux word");
        // SWAR-OK: candidate-count arithmetic (r * 2^p), not packed-lane math.
        let n_virtual = num_kernels << partitions;
        Vcc {
            block_bits,
            kernel_bits,
            num_kernels,
            partitions,
            mode: VccMode::FullBlock { kernels },
            name: format!("vcc{block_bits}-{n_virtual}-{num_kernels}"),
        }
    }

    /// VCC for MLC memory with runtime-generated kernels ("VCC-Generated",
    /// the paper's default configuration for the MLC experiments).
    ///
    /// The block's left digits (n/2 bits) seed Algorithm 2; the right digits
    /// (n/2 bits) are encoded in partitions of `kernel_bits` bits.
    /// With n = 64 and `kernel_bits` = 8 this yields the paper's
    /// VCC(64, 16·r, r) family: 4 partitions and `log2(r) + 4` aux bits.
    ///
    /// # Panics
    ///
    /// Panics if the block width is odd, the kernel width does not divide
    /// n/2, or `num_kernels` is not a power of two.
    pub fn generated_mlc(block_bits: usize, kernel_bits: usize, num_kernels: usize) -> Self {
        assert!(
            block_bits.is_multiple_of(2),
            "MLC blocks need an even bit width"
        );
        let digit_bits = block_bits / 2;
        assert!(
            digit_bits.is_multiple_of(kernel_bits),
            "kernel width {kernel_bits} must divide the right-digit vector width {digit_bits}"
        );
        assert!(
            num_kernels.is_power_of_two(),
            "kernel count must be a power of two"
        );
        let partitions = digit_bits / kernel_bits;
        assert!(partitions < 64, "too many partitions for one aux word");
        // SWAR-OK: candidate-count arithmetic (r * 2^p), not packed-lane math.
        let n_virtual = num_kernels << partitions;
        Vcc {
            block_bits,
            kernel_bits,
            num_kernels,
            partitions,
            mode: VccMode::MlcGenerated {
                config: GeneratorConfig::new(kernel_bits, num_kernels),
            },
            name: format!("vcc{block_bits}g-{n_virtual}-{num_kernels}"),
        }
    }

    /// The paper's canonical MLC configuration VCC(64, N, N/16) for a given
    /// virtual-coset count `N ∈ {32, 64, 128, 256}` with generated kernels.
    ///
    /// # Panics
    ///
    /// Panics if `n_virtual_cosets < 32` or it is not a multiple of 16.
    pub fn paper_mlc(n_virtual_cosets: usize) -> Self {
        assert!(
            n_virtual_cosets >= 32 && n_virtual_cosets.is_multiple_of(16),
            "the paper's MLC family requires N = 16·r with r ≥ 2"
        );
        Self::generated_mlc(64, 8, n_virtual_cosets / 16)
    }

    /// The paper's canonical stored-kernel configuration VCC(64, N, N/16).
    pub fn paper_stored<R: Rng + ?Sized>(n_virtual_cosets: usize, rng: &mut R) -> Self {
        assert!(
            n_virtual_cosets >= 32 && n_virtual_cosets.is_multiple_of(16),
            "the paper's stored family requires N = 16·r with r ≥ 2"
        );
        Self::stored(64, 16, n_virtual_cosets / 16, rng)
    }

    /// The hybrid configuration sketched in the paper's conclusion: the
    /// all-zero (identity) and all-one (inversion) kernels are added to the
    /// random set, so the same encoder serves both encrypted (random) and
    /// unencrypted (biased) data — the identity/inversion virtual cosets
    /// subsume Flip-N-Write's candidates.
    ///
    /// `num_kernels` counts the total kernels including the two fixed ones.
    ///
    /// # Panics
    ///
    /// Panics if `num_kernels < 4`, is not a power of two, or `kernel_bits`
    /// does not divide `block_bits`.
    pub fn hybrid<R: Rng + ?Sized>(
        block_bits: usize,
        kernel_bits: usize,
        num_kernels: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            num_kernels >= 4 && num_kernels.is_power_of_two(),
            "hybrid VCC needs a power-of-two kernel count ≥ 4"
        );
        let mask = if kernel_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << kernel_bits) - 1
        };
        let mut kernels = vec![0u64, mask];
        kernels.extend((2..num_kernels).map(|_| rng.gen::<u64>() & mask));
        let mut vcc = Self::with_kernels(block_bits, KernelSet::new(kernel_bits, kernels));
        vcc.name = format!(
            "vcc{block_bits}h-{}-{num_kernels}",
            vcc.num_virtual_cosets()
        );
        vcc
    }

    /// Number of partitions `p`.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Kernel width `m` in bits.
    pub fn kernel_bits(&self) -> usize {
        self.kernel_bits
    }

    /// Number of kernels `r`.
    pub fn num_kernels(&self) -> usize {
        self.num_kernels
    }

    /// Number of virtual coset candidates `N = r · 2^p`.
    pub fn num_virtual_cosets(&self) -> usize {
        // SWAR-OK: candidate-count arithmetic (r * 2^p), not packed-lane math.
        self.num_kernels << self.partitions
    }

    /// Whether this instance generates kernels from the data (true) or uses
    /// a stored ROM (false).
    pub fn uses_generated_kernels(&self) -> bool {
        matches!(self.mode, VccMode::MlcGenerated { .. })
    }

    fn kernel_index_bits(&self) -> u32 {
        // SWAR-OK: ceil_log2 of a kernel count is at most 64; cannot truncate.
        ceil_log2(self.num_kernels) as u32
    }

    /// Assembles the aux word: kernel index in the high bits, per-partition
    /// complement flags in the low bits (matching Algorithm 1's
    /// `besti = i · 2^p + flags`).
    fn pack_aux(&self, kernel_idx: usize, flags: u64) -> u64 {
        // SWAR-OK: kernel_idx < r and flags < 2^p, so the fields cannot
        // overlap (constructors assert p < 64 and the aux-width budget).
        ((kernel_idx as u64) << self.partitions) | flags
    }

    fn unpack_aux(&self, aux: u64) -> (usize, u64) {
        let flag_mask = (1u64 << self.partitions) - 1;
        let flags = aux & flag_mask;
        let idx_mask = if self.kernel_index_bits() == 0 {
            0
        } else {
            (1u64 << self.kernel_index_bits()) - 1
        };
        let idx = ((aux >> self.partitions) & idx_mask) as usize;
        (idx, flags)
    }

    /// Encodes in full-block mode: partition j covers bits [j·m, (j+1)·m).
    ///
    /// Routes through the broadcast-SWAR search whenever the objective
    /// compiles to transition classes ([`WriteContext::cost_model`]), the
    /// kernels tile 64-bit words and the partitions respect the classes'
    /// cell alignment; otherwise the retained scalar path runs.
    fn encode_full_block(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        kernels: &KernelSet,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        if kernels.has_broadcasts() {
            if let Some(model) = ctx.cost_model(cost) {
                if self
                    .kernel_bits
                    .is_multiple_of(model.classes().cell_bits() as usize)
                {
                    self.encode_full_block_fast(data, &model, kernels, out);
                    return;
                }
            }
        }
        self.encode_full_block_scalar(data, ctx, cost, kernels, scratch, out);
    }

    /// Broadcast-SWAR full-block search: each kernel is XORed across the
    /// whole block one word at a time (its complement form is the bitwise
    /// NOT of the same word), every partition is costed with masked
    /// popcounts over the per-candidate class planes, and the
    /// cheaper-of-two per partition is selected with a packed fixed-point
    /// compare — all partitions and both complement forms evaluated as
    /// data-parallel word operations, mirroring the paper's VCC hardware.
    /// Only the winning kernel's codeword is ever materialized.
    fn encode_full_block_fast(
        &self,
        data: &Block,
        model: &CostModel<'_>,
        kernels: &KernelSet,
        out: &mut Encoded,
    ) {
        let m = self.kernel_bits;
        let m_mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        let words = data.words();
        let mut best = FixedCost::ZERO;
        let mut best_aux = 0u64;
        let mut best_kernel = 0usize;
        let mut best_flags = 0u64;
        let mut found = false;
        let weighted = model.weighted_fields_fit(m);
        if words.len() == 1 {
            // Single-word block (the paper's 64-bit configurations): the
            // partition walk collapses to one tight loop per kernel.
            let dw = words[0];
            for i in 0..kernels.len() {
                let y = dw ^ kernels.broadcast(i);
                // All partitions costed at once: fused class planes for
                // both complement forms, then per-field popcounts.
                let (dp, cp) = model.planes_pair(0, y, u64::MAX);
                let direct = model.field_counts(&dp, m);
                let comp = model.field_counts(&cp, m);
                let mut flags = 0u64;
                let mut data_cost = FixedCost::ZERO;
                if weighted {
                    // Counts fold into weighted per-field cost words, so
                    // each partition's cost is one shift-and-mask away.
                    let (pd, sd) = model.weighted_fields(&direct);
                    let (pc, sc) = model.weighted_fields(&comp);
                    for j in 0..self.partitions {
                        let sh = j * m;
                        let c = FixedCost {
                            primary: (pd >> sh) & m_mask,
                            secondary: (sd >> sh) & m_mask,
                        };
                        let c_c = FixedCost {
                            primary: (pc >> sh) & m_mask,
                            secondary: (sc >> sh) & m_mask,
                        };
                        let (take_c, chosen) = FixedCost::select_min(c, c_c);
                        // SWAR-OK: take_c is 0 or 1, so exactly bit j is set.
                        flags |= take_c << j;
                        data_cost += chosen;
                    }
                } else {
                    for j in 0..self.partitions {
                        let c = model.count_cost(&direct, j * m, m_mask);
                        let c_c = model.count_cost(&comp, j * m, m_mask);
                        let (take_c, chosen) = FixedCost::select_min(c, c_c);
                        // SWAR-OK: take_c is 0 or 1, so exactly bit j is set.
                        flags |= take_c << j;
                        data_cost += chosen;
                    }
                }
                // Aux-cost pruning: costs are non-negative, so a kernel
                // whose data cost alone is not better than the incumbent
                // total can never win — skip its aux evaluation.
                if found && data_cost.packed() >= best.packed() {
                    continue;
                }
                let aux = self.pack_aux(i, flags);
                let total = data_cost + model.aux_cost(aux);
                if !found || total.packed() < best.packed() {
                    best = total;
                    best_aux = aux;
                    best_kernel = i;
                    best_flags = flags;
                    found = true;
                }
            }
        } else {
            for i in 0..kernels.len() {
                let kb = kernels.broadcast(i);
                let mut flags = 0u64;
                let mut data_cost = FixedCost::ZERO;
                let mut j = 0usize;
                for (w, &dw) in words.iter().enumerate() {
                    if j >= self.partitions {
                        break;
                    }
                    let y = dw ^ kb;
                    let (dp, cp) = model.planes_pair(w, y, u64::MAX);
                    let direct = model.field_counts(&dp, m);
                    let comp = model.field_counts(&cp, m);
                    let base = w * 64;
                    let mut sh = 0usize;
                    while sh < 64 && j < self.partitions && base + sh < self.block_bits {
                        let c = model.count_cost(&direct, sh, m_mask);
                        let c_c = model.count_cost(&comp, sh, m_mask);
                        let (take_c, chosen) = FixedCost::select_min(c, c_c);
                        // SWAR-OK: take_c is 0 or 1, so exactly bit j is set.
                        flags |= take_c << j;
                        data_cost += chosen;
                        sh += m;
                        j += 1;
                    }
                }
                if found && data_cost.packed() >= best.packed() {
                    continue;
                }
                let aux = self.pack_aux(i, flags);
                let total = data_cost + model.aux_cost(aux);
                if !found || total.packed() < best.packed() {
                    best = total;
                    best_aux = aux;
                    best_kernel = i;
                    best_flags = flags;
                    found = true;
                }
            }
        }
        assert!(found, "at least one kernel");

        // Materialize only the winner: data ^ broadcast kernel, flipping the
        // partitions whose complement form won.
        out.codeword.reset_zeros(self.block_bits);
        let kb = kernels.broadcast(best_kernel);
        let mut j = 0usize;
        for (w, &dw) in words.iter().enumerate() {
            let mut flip = 0u64;
            let base = w * 64;
            let mut sh = 0usize;
            while sh < 64 && j < self.partitions && base + sh < self.block_bits {
                if (best_flags >> j) & 1 == 1 {
                    flip |= m_mask << sh;
                }
                sh += m;
                j += 1;
            }
            out.codeword
                .insert_word_masked(w, dw ^ kb ^ flip, model.word_mask(w));
        }
        out.aux = best_aux;
        out.cost = best.to_cost();
    }

    /// Scalar full-block reference path: per-partition extract / XOR /
    /// `field_cost` virtual calls. Runs for objectives without transition
    /// classes (e.g. custom energy tables, [`crate::cost::ScalarOnly`]) and
    /// for kernel widths that do not tile a 64-bit word; also the oracle
    /// the differential `cost_oracle` suite pins the fast path against.
    fn encode_full_block_scalar(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        kernels: &KernelSet,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        let m = self.kernel_bits;
        let (cand_slot, best_slot) = (&mut scratch.cand, &mut scratch.best);
        let cand = EncodeScratch::slot(cand_slot, self.block_bits);
        let best = EncodeScratch::slot(best_slot, self.block_bits);
        let mut found = false;
        for i in 0..kernels.len() {
            let mut flags = 0u64;
            let mut data_cost = Cost::ZERO;
            for j in 0..self.partitions {
                let start = j * m;
                let d = data.extract(start, m);
                let y = d ^ kernels.kernel(i);
                let y_c = d ^ kernels.kernel_complement(i);
                let c = ctx.range_cost(cost, y, start, m);
                let c_c = ctx.range_cost(cost, y_c, start, m);
                if c_c.is_better_than(&c) {
                    flags |= 1u64 << j;
                    cand.insert(start, m, y_c);
                    data_cost = data_cost + c_c;
                } else {
                    cand.insert(start, m, y);
                    data_cost = data_cost + c;
                }
            }
            let aux = self.pack_aux(i, flags);
            let total = data_cost + ctx.aux_cost(cost, aux);
            if !found || total.is_better_than(&out.cost) {
                // The winner parks in `best` (same width as `cand` for the
                // whole loop, so the swap can never leave a stale length —
                // see the `EncodeScratch::slot` contract).
                std::mem::swap(best, cand);
                out.aux = aux;
                out.cost = total;
                found = true;
            }
        }
        assert!(found, "at least one kernel");
        out.codeword.copy_from(best);
    }

    /// Encodes in MLC generated mode: only the right digits are transformed;
    /// costs are evaluated on whole symbols (left digit interleaved back in).
    ///
    /// Blocks that fit one word route through the broadcast-SWAR search
    /// whenever the objective compiles to transition classes; the retained
    /// scalar path runs otherwise.
    fn encode_mlc_generated(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        config: &GeneratorConfig,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        if self.block_bits <= 64 && (2 * self.kernel_bits).is_power_of_two() {
            if let Some(model) = ctx.cost_model(cost) {
                self.encode_mlc_generated_fast(data, ctx, &model, config, scratch, out);
                return;
            }
        }
        self.encode_mlc_generated_scalar(data, ctx, cost, config, scratch, out);
    }

    /// Broadcast-SWAR generated-kernel search. The whole candidate block is
    /// formed in the symbol domain with one XOR: spreading the kernel
    /// broadcast onto the right-digit positions
    /// ([`spread_to_right_digits`]) turns the per-partition right-digit
    /// XOR into `data ^ k_sym`, and the complement form is a further XOR
    /// with the right-digit mask. Partition costs are masked popcounts over
    /// the candidate's class planes; digit extraction and re-interleaving
    /// vanish from the per-kernel loop entirely (the winner needs no
    /// interleave at all — its symbol word is already assembled).
    fn encode_mlc_generated_fast(
        &self,
        data: &Block,
        ctx: &WriteContext,
        model: &CostModel<'_>,
        config: &GeneratorConfig,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        let m = self.kernel_bits; // right-digit bits per partition
        let digit_bits = self.block_bits / 2;
        let dw = data.words()[0];
        let sm = ctx.stuck.mask().words()[0];
        let sv = ctx.stuck.value().words()[0];
        // Seed Algorithm 2 with the left digits as they will actually be
        // stored (stuck cells keep their frozen value), like the scalar
        // path and the decoder.
        let stored = (dw & !sm) | (sv & sm);
        let seed = EncodeScratch::slot(&mut scratch.stored_left, digit_bits);
        seed.set_from_u64(
            crate::symbol::compress_even_bits_word(stored >> 1),
            digit_bits,
        );
        generate_kernels_into(seed, *config, &mut scratch.kernels);
        let kernels = &scratch.kernels;

        let block_mask = if self.block_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.block_bits) - 1
        };
        let right_mask = MLC_RIGHT_DIGITS & block_mask;
        let sym_mask = if 2 * m == 64 {
            u64::MAX
        } else {
            (1u64 << (2 * m)) - 1
        };
        // Kernel broadcast across the right-digit vector: the fast-path
        // gate guarantees m is a power of two (so it tiles a word), letting
        // the stored-path primitive serve here too, masked to digit_bits.
        let digit_mask = if digit_bits == 64 {
            u64::MAX
        } else {
            (1u64 << digit_bits) - 1
        };
        let broadcast_digits = |k: u64| crate::kernel::broadcast_word(k, m) & digit_mask;
        let mut best = FixedCost::ZERO;
        let mut best_aux = 0u64;
        let mut best_kernel = 0usize;
        let mut best_flags = 0u64;
        let mut found = false;
        for i in 0..kernels.len() {
            let k_sym = spread_to_right_digits(broadcast_digits(kernels.kernel(i)));
            let y = dw ^ k_sym;
            // Partition fields are symbol groups of 2m bits; cost all of
            // them at once with per-field popcounts over the fused class
            // planes (the complement form flips only the right digits).
            let (dp, cp) = model.planes_pair(0, y, right_mask);
            let direct = model.field_counts(&dp, 2 * m);
            let comp = model.field_counts(&cp, 2 * m);
            let mut flags = 0u64;
            let mut data_cost = FixedCost::ZERO;
            for j in 0..self.partitions {
                let sh = 2 * j * m;
                let c = model.count_cost(&direct, sh, sym_mask);
                let c_c = model.count_cost(&comp, sh, sym_mask);
                let (take_c, chosen) = FixedCost::select_min(c, c_c);
                // SWAR-OK: take_c is 0 or 1, so exactly bit j is set.
                flags |= take_c << j;
                data_cost += chosen;
            }
            // Aux-cost pruning (see encode_full_block_fast).
            if found && data_cost.packed() >= best.packed() {
                continue;
            }
            let aux = self.pack_aux(i, flags);
            let total = data_cost + model.aux_cost(aux);
            if !found || total.packed() < best.packed() {
                best = total;
                best_aux = aux;
                best_kernel = i;
                best_flags = flags;
                found = true;
            }
        }
        assert!(found, "at least one kernel");

        // Materialize the winner: flip the right digits of the partitions
        // whose complement form won.
        let k_sym = spread_to_right_digits(broadcast_digits(kernels.kernel(best_kernel)));
        let mut flip = 0u64;
        for j in 0..self.partitions {
            if (best_flags >> j) & 1 == 1 {
                flip |= right_mask & (sym_mask << (2 * j * m));
            }
        }
        out.codeword
            .set_from_u64((dw ^ k_sym ^ flip) & block_mask, self.block_bits);
        out.aux = best_aux;
        out.cost = best.to_cost();
    }

    /// Scalar generated-kernel reference path (digit extraction, per-bit
    /// interleave, per-partition `field_cost` calls); see
    /// [`Vcc::encode_full_block_scalar`] for when it runs.
    fn encode_mlc_generated_scalar(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        config: &GeneratorConfig,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        let m = self.kernel_bits; // right-digit bits per partition
        let digit_bits = self.block_bits / 2;
        let left = EncodeScratch::slot(&mut scratch.left, digit_bits);
        extract_left_digits_into(data, left);
        let right = EncodeScratch::slot(&mut scratch.right, digit_bits);
        extract_right_digits_into(data, right);
        // Seed Algorithm 2 with the left digits as they will actually be
        // stored (stuck cells keep their frozen value). The decoder reads
        // those same stored left digits, so it regenerates identical kernels
        // even in the presence of left-digit faults.
        let stored_left = EncodeScratch::slot(&mut scratch.stored_left, digit_bits);
        {
            let staging = EncodeScratch::slot(&mut scratch.cand, self.block_bits);
            staging.copy_from(data);
            ctx.stuck.apply_in_place(staging);
            extract_left_digits_into(staging, stored_left);
        }
        generate_kernels_into(stored_left, *config, &mut scratch.kernels);
        let kernels = &scratch.kernels;

        // `cand` holds the candidate right-digit vector; the winner parks in
        // `best` until the kernel loop finishes.
        let cand = EncodeScratch::slot(&mut scratch.cand, digit_bits);
        let best = EncodeScratch::slot(&mut scratch.best, digit_bits);
        let mut found = false;
        for i in 0..kernels.len() {
            let mut flags = 0u64;
            let mut data_cost = Cost::ZERO;
            for j in 0..self.partitions {
                let rd_start = j * m;
                let d = right.extract(rd_start, m);
                let l = left.extract(rd_start, m);
                let y = d ^ kernels.kernel(i);
                let y_c = d ^ kernels.kernel_complement(i);
                // Evaluate the cost of the full 2m-bit symbol group.
                let sym_start = 2 * rd_start;
                let sym_cand = interleave_bits(l, y, m);
                let sym_cand_c = interleave_bits(l, y_c, m);
                let c = ctx.range_cost(cost, sym_cand, sym_start, 2 * m);
                let c_c = ctx.range_cost(cost, sym_cand_c, sym_start, 2 * m);
                if c_c.is_better_than(&c) {
                    flags |= 1u64 << j;
                    cand.insert(rd_start, m, y_c);
                    data_cost = data_cost + c_c;
                } else {
                    cand.insert(rd_start, m, y);
                    data_cost = data_cost + c;
                }
            }
            let aux = self.pack_aux(i, flags);
            let total = data_cost + ctx.aux_cost(cost, aux);
            if !found || total.is_better_than(&out.cost) {
                std::mem::swap(best, cand);
                out.aux = aux;
                out.cost = total;
                found = true;
            }
        }
        assert!(found, "at least one kernel");
        interleave_digits_into(left, best, &mut out.codeword);
    }
}

/// Interleaves `m` left-digit bits and `m` right-digit bits into a `2m`-bit
/// symbol-group word: symbol `s` = (left bit `s`, right bit `s`). Backed by
/// the precomputed Morton byte tables of [`crate::symbol`] instead of a
/// per-bit loop; callers pass values already masked to `m ≤ 32` bits.
#[inline]
fn interleave_bits(left: u64, right: u64, m: usize) -> u64 {
    debug_assert!(m <= 32, "symbol-group words hold at most 32 symbols");
    interleave_word(left, right)
}

impl Encoder for Vcc {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        // SWAR-OK: partitions < 64 (constructor assert); cannot truncate.
        self.kernel_index_bits() + self.partitions as u32
    }

    // ORACLE: crates/coset/tests/cost_oracle.rs
    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        let mut out = Encoded::placeholder(self.block_bits);
        self.encode_into(data, ctx, cost, &mut EncodeScratch::new(), &mut out);
        out
    }

    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        match &self.mode {
            VccMode::FullBlock { kernels } => {
                self.encode_full_block(data, ctx, cost, kernels, scratch, out)
            }
            VccMode::MlcGenerated { config } => {
                self.encode_mlc_generated(data, ctx, cost, config, scratch, out)
            }
        }
    }

    fn decode(&self, codeword: &Block, aux: u64) -> Block {
        assert_eq!(codeword.len(), self.block_bits, "codeword width mismatch");
        let (idx, flags) = self.unpack_aux(aux);
        match &self.mode {
            VccMode::FullBlock { kernels } => {
                let m = self.kernel_bits;
                let mut out = Block::zeros(self.block_bits);
                for j in 0..self.partitions {
                    let start = j * m;
                    let y = codeword.extract(start, m);
                    let k = if (flags >> j) & 1 == 1 {
                        kernels.kernel_complement(idx)
                    } else {
                        kernels.kernel(idx)
                    };
                    out.insert(start, m, y ^ k);
                }
                out
            }
            VccMode::MlcGenerated { config } => {
                // Left digits were written unmodified: recover the kernels
                // from them, then undo the right-digit transformation.
                let left = extract_left_digits(codeword);
                let kernels = generate_kernels(&left, *config);
                let enc_right = extract_right_digits(codeword);
                let m = self.kernel_bits;
                let mut right = Block::zeros(enc_right.len());
                for j in 0..self.partitions {
                    let start = j * m;
                    let y = enc_right.extract(start, m);
                    let k = if (flags >> j) & 1 == 1 {
                        kernels.kernel_complement(idx)
                    } else {
                        kernels.kernel(idx)
                    };
                    right.insert(start, m, y ^ k);
                }
                interleave_digits(&left, &right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::parse_bits;
    use crate::cost::{BitFlips, OnesCount, SawCount, WriteEnergy};
    use crate::encoder::check_roundtrip;
    use crate::rcc::Rcc;
    use crate::StuckBits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn configuration_arithmetic() {
        let mut rng = StdRng::seed_from_u64(40);
        let vcc = Vcc::stored(64, 16, 16, &mut rng);
        assert_eq!(vcc.partitions(), 4);
        assert_eq!(vcc.kernel_bits(), 16);
        assert_eq!(vcc.num_kernels(), 16);
        assert_eq!(vcc.num_virtual_cosets(), 256);
        assert_eq!(vcc.aux_bits(), 8); // log2(16) + 4
        assert!(!vcc.uses_generated_kernels());

        let g = Vcc::paper_mlc(256);
        assert_eq!(g.partitions(), 4);
        assert_eq!(g.num_kernels(), 16);
        assert_eq!(g.num_virtual_cosets(), 256);
        assert_eq!(g.aux_bits(), 8);
        assert!(g.uses_generated_kernels());

        for n in [32usize, 64, 128, 256] {
            let v = Vcc::paper_mlc(n);
            assert_eq!(v.num_virtual_cosets(), n);
            assert_eq!(v.aux_bits() as usize, crate::kernel::ceil_log2(n));
        }
    }

    #[test]
    fn aux_packing_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        let vcc = Vcc::stored(64, 16, 8, &mut rng);
        for idx in 0..8usize {
            for flags in 0..16u64 {
                let aux = vcc.pack_aux(idx, flags);
                assert_eq!(vcc.unpack_aux(aux), (idx, flags));
            }
        }
    }

    #[test]
    fn figure_3_worked_example() {
        // Figure 3 of the paper: 64-bit encrypted block, four 16-bit
        // kernels, all-zero destination, ones-minimization.
        let d = parse_bits("1010001011011011 0101000100100100 0100011001000101 1010010100001011");
        assert_eq!(d.len(), 64);
        // The figure's d0 is the leftmost 16 bits; our bit 0 is the LSB, so
        // place d0 at the highest partition to mirror the layout.
        // Instead of reordering, feed kernels and data consistently: build
        // the block so partition j equals the figure's d_j.
        let d_sub: Vec<u64> = [
            "1010001011011011",
            "0101000100100100",
            "0100011001000101",
            "1010010100001011",
        ]
        .iter()
        .map(|s| parse_bits(s).as_u64())
        .collect();
        let mut data = Block::zeros(64);
        for (j, v) in d_sub.iter().enumerate() {
            data.insert(j * 16, 16, *v);
        }
        let kernels = KernelSet::new(
            16,
            [
                "1010100111011011",
                "0100011111110100",
                "0011001001100011",
                "1010110001000111",
            ]
            .iter()
            .map(|s| parse_bits(s).as_u64())
            .collect(),
        );
        let vcc = Vcc::with_kernels(64, kernels);
        let ctx = WriteContext::blank(64, vcc.aux_bits());
        let enc = vcc.encode(&data, &ctx, &OnesCount);

        // Figure 3(d.2): the best candidate uses kernel 0 with partitions
        // d1, d2 complemented; total data ones = 3 + 3 + 4 + 5 = 15.
        let (idx, flags) = vcc.unpack_aux(enc.aux);
        assert_eq!(idx, 0, "kernel 0 should win");
        assert_eq!(flags, 0b0110, "d1 and d2 use the complemented kernel");
        assert_eq!(enc.codeword.count_ones(), 15);
        // Figure 3(e): X_opt partitions.
        let expected: Vec<u64> = [
            "0000101100000000",
            "0000011100000000",
            "0001000001100001",
            "0000110011010000",
        ]
        .iter()
        .map(|s| parse_bits(s).as_u64())
        .collect();
        for (j, e) in expected.iter().enumerate() {
            assert_eq!(
                enc.codeword.extract(j * 16, 16),
                *e,
                "partition {j} mismatch"
            );
        }
        // Total cost per Fig. 3(d.3) includes the aux-bit ones: 15 + HW(aux).
        assert_eq!(enc.cost.primary, 15.0 + enc.aux.count_ones() as f64);
        assert_eq!(vcc.decode(&enc.codeword, enc.aux), data);
    }

    #[test]
    fn roundtrip_stored_various_configs() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, m, r) in [
            (64usize, 16usize, 2usize),
            (64, 16, 16),
            (64, 8, 4),
            (32, 16, 8),
            (64, 32, 4),
        ] {
            let vcc = Vcc::stored(n, m, r, &mut rng);
            check_roundtrip(&vcc, &BitFlips, &mut rng, 50);
            check_roundtrip(&vcc, &OnesCount, &mut rng, 20);
        }
    }

    #[test]
    fn roundtrip_generated_mlc() {
        let mut rng = StdRng::seed_from_u64(43);
        for n_cosets in [32usize, 64, 128, 256] {
            let vcc = Vcc::paper_mlc(n_cosets);
            check_roundtrip(&vcc, &WriteEnergy::mlc(), &mut rng, 50);
            check_roundtrip(&vcc, &SawCount, &mut rng, 20);
        }
    }

    #[test]
    fn generated_mode_preserves_left_digits() {
        let mut rng = StdRng::seed_from_u64(44);
        let vcc = Vcc::paper_mlc(256);
        for _ in 0..50 {
            let data = Block::random(&mut rng, 64);
            let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits());
            let enc = vcc.encode(&data, &ctx, &WriteEnergy::mlc());
            assert_eq!(
                extract_left_digits(&enc.codeword),
                extract_left_digits(&data),
                "left digits must pass through unmodified"
            );
        }
    }

    #[test]
    fn matches_explicit_rcc_over_virtual_cosets() {
        // VCC's greedy per-partition selection is exactly equivalent to
        // exhaustively searching the N virtual cosets when the cost function
        // is additive over partitions and insensitive to the aux encoding
        // (compare data-portion cost only).
        let mut rng = StdRng::seed_from_u64(45);
        let kernels = KernelSet::random(16, 4, &mut rng);
        let vcc = Vcc::with_kernels(64, kernels.clone());
        let virtual_cosets = kernels.virtual_cosets(4);
        assert_eq!(virtual_cosets.len(), 64);
        let rcc = Rcc::new(64, virtual_cosets);
        for _ in 0..50 {
            let data = Block::random(&mut rng, 64);
            let old = Block::random(&mut rng, 64);
            // aux_bits = 0 so aux cost does not perturb the comparison.
            let ctx = WriteContext::new(old.clone(), 0, 0);
            let ev = vcc.encode(&data, &ctx, &BitFlips);
            let er = rcc.encode(&data, &ctx, &BitFlips);
            assert_eq!(
                ev.codeword.hamming_distance(&old),
                er.codeword.hamming_distance(&old),
                "VCC must find the same optimum as exhaustive RCC over its virtual cosets"
            );
        }
    }

    #[test]
    fn beats_unencoded_on_ones_minimization() {
        let mut rng = StdRng::seed_from_u64(46);
        let vcc = Vcc::stored(64, 16, 16, &mut rng);
        let mut total_unencoded = 0u64;
        let mut total_vcc = 0u64;
        for _ in 0..300 {
            let data = Block::random(&mut rng, 64);
            let ctx = WriteContext::blank(64, vcc.aux_bits());
            let enc = vcc.encode(&data, &ctx, &OnesCount);
            total_unencoded += data.count_ones() as u64;
            total_vcc += enc.codeword.count_ones() as u64 + enc.aux.count_ones() as u64;
        }
        assert!(
            (total_vcc as f64) < 0.85 * total_unencoded as f64,
            "VCC(64,256,16) should reduce written ones well below unencoded \
             ({total_vcc} vs {total_unencoded})"
        );
    }

    #[test]
    fn stored_vcc_masks_stuck_cells_with_saw_objective() {
        let mut rng = StdRng::seed_from_u64(47);
        let vcc = Vcc::paper_stored(256, &mut rng);
        let mut masked = 0usize;
        let trials = 200usize;
        for _ in 0..trials {
            let data = Block::random(&mut rng, 64);
            let mut stuck = StuckBits::none(64);
            // Stick two whole MLC cells at random symbols.
            for _ in 0..2 {
                let cell = rand::Rng::gen_range(&mut rng, 0..32);
                let sym = rand::Rng::gen_range(&mut rng, 0..4u64);
                stuck.stick_cell(cell, 2, sym);
            }
            let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits())
                .with_stuck(stuck.clone());
            let enc = vcc.encode(&data, &ctx, &SawCount);
            if stuck.saw_count(&enc.codeword) == 0 {
                masked += 1;
            }
            assert_eq!(vcc.decode(&enc.codeword, enc.aux), data);
        }
        assert!(
            masked * 100 >= trials * 60,
            "stored VCC with 256 cosets should mask most double-cell faults ({masked}/{trials})"
        );
    }

    #[test]
    fn generated_vcc_always_masks_right_digit_faults() {
        // The generated-kernel deployment can only steer the right digit of
        // each symbol; a fault whose left digit already matches the data is
        // maskable, and decoding from the *stored* (stuck-applied) row must
        // recover the data exactly whenever no stuck-at-wrong cell remains.
        let mut rng = StdRng::seed_from_u64(52);
        let vcc = Vcc::paper_mlc(256);
        let mut maskable_trials = 0usize;
        let mut masked = 0usize;
        for _ in 0..400 {
            let data = Block::random(&mut rng, 64);
            let cell = rand::Rng::gen_range(&mut rng, 0..32usize);
            // Force the stuck left digit to agree with the data so the fault
            // is maskable by right-digit encoding.
            let left_bit = data.bit(2 * cell + 1);
            let stuck_sym =
                (u64::from(left_bit) << 1) | u64::from(rand::Rng::gen_bool(&mut rng, 0.5));
            let mut stuck = StuckBits::none(64);
            stuck.stick_cell(cell, 2, stuck_sym);
            let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits())
                .with_stuck(stuck.clone());
            let enc = vcc.encode(&data, &ctx, &SawCount);
            maskable_trials += 1;
            if stuck.saw_count(&enc.codeword) == 0 {
                masked += 1;
                // Decoding what the memory actually stores recovers the data.
                let stored = stuck.apply_to(&enc.codeword);
                assert_eq!(vcc.decode(&stored, enc.aux), data);
            }
        }
        assert!(
            masked * 100 >= maskable_trials * 95,
            "generated VCC should mask nearly all maskable single-cell faults \
             ({masked}/{maskable_trials})"
        );
    }

    #[test]
    fn generated_vcc_decode_from_stored_row_is_exact_outside_stuck_cells() {
        // Even when a left digit is stuck at the wrong value (unmaskable for
        // the generated deployment), the kernels are seeded from the stored
        // left digits, so decoding corrupts only the stuck cell itself.
        let mut rng = StdRng::seed_from_u64(53);
        let vcc = Vcc::paper_mlc(64);
        for _ in 0..200 {
            let data = Block::random(&mut rng, 64);
            let mut stuck = StuckBits::none(64);
            let cell = rand::Rng::gen_range(&mut rng, 0..32usize);
            let sym = rand::Rng::gen_range(&mut rng, 0..4u64);
            stuck.stick_cell(cell, 2, sym);
            let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits())
                .with_stuck(stuck.clone());
            let enc = vcc.encode(&data, &ctx, &SawCount);
            let stored = stuck.apply_to(&enc.codeword);
            let decoded = vcc.decode(&stored, enc.aux);
            for bit in 0..64 {
                if !stuck.is_stuck(bit) {
                    assert_eq!(
                        decoded.bit(bit),
                        data.bit(bit),
                        "non-stuck bit {bit} corrupted by decode"
                    );
                }
            }
        }
    }

    #[test]
    fn generated_and_stored_give_similar_energy() {
        // Section V-B: stored kernels improve on generated kernels only
        // marginally. Check the gap is small on random data.
        let mut rng = StdRng::seed_from_u64(48);
        let gen = Vcc::paper_mlc(256);
        let sto = Vcc::paper_stored(256, &mut rng);
        let cf = WriteEnergy::mlc();
        let mut e_gen = 0.0f64;
        let mut e_sto = 0.0f64;
        for _ in 0..400 {
            let data = Block::random(&mut rng, 64);
            let old = Block::random(&mut rng, 64);
            let ctx = WriteContext::new(old, 0, 8);
            e_gen += gen.encode(&data, &ctx, &cf).cost.primary;
            e_sto += sto.encode(&data, &ctx, &cf).cost.primary;
        }
        let gap = (e_gen - e_sto).abs() / e_sto;
        assert!(
            gap < 0.12,
            "generated vs stored energy gap too large: {gap:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn stored_rejects_bad_kernel_width() {
        let mut rng = StdRng::seed_from_u64(49);
        Vcc::stored(64, 24, 4, &mut rng);
    }

    #[test]
    fn hybrid_contains_identity_and_inversion_candidates() {
        let mut rng = StdRng::seed_from_u64(50);
        let vcc = Vcc::hybrid(64, 16, 8, &mut rng);
        assert_eq!(vcc.num_kernels(), 8);
        assert_eq!(vcc.num_virtual_cosets(), 128);
        // Re-writing the exact current contents is free: the identity kernel
        // provides a zero-flip candidate (biased-data behaviour).
        let data = Block::random(&mut rng, 64);
        let ctx = WriteContext::new(data.clone(), 0, vcc.aux_bits());
        let enc = vcc.encode(&data, &ctx, &BitFlips);
        assert_eq!(enc.codeword, data, "identity candidate should win");
        assert_eq!(vcc.decode(&enc.codeword, enc.aux), data);
    }

    #[test]
    fn hybrid_matches_fnw_on_biased_data_and_vcc_on_random_data() {
        // On biased (unencrypted) data against a zeroed row, the hybrid's
        // identity/inversion kernels subsume Flip-N-Write, so it is never
        // worse; on random data it still reaches VCC-like ones reduction.
        let mut rng = StdRng::seed_from_u64(51);
        let hybrid = Vcc::hybrid(64, 16, 16, &mut rng);
        let fnw = crate::Fnw::with_sub_block(64, 16);
        let mut hybrid_total = 0u64;
        let mut fnw_total = 0u64;
        for _ in 0..200 {
            // Biased plaintext: mostly-ones words (e.g. small negative ints).
            let mut data = Block::ones(64);
            for _ in 0..8 {
                data.set_bit(rand::Rng::gen_range(&mut rng, 0..64), false);
            }
            let ctx_h = WriteContext::new(Block::zeros(64), 0, hybrid.aux_bits());
            let ctx_f = WriteContext::new(Block::zeros(64), 0, fnw.aux_bits());
            hybrid_total += hybrid
                .encode(&data, &ctx_h, &OnesCount)
                .codeword
                .count_ones() as u64;
            fnw_total += fnw.encode(&data, &ctx_f, &OnesCount).codeword.count_ones() as u64;
            assert_eq!(
                hybrid.decode(
                    &hybrid.encode(&data, &ctx_h, &OnesCount).codeword,
                    hybrid.encode(&data, &ctx_h, &OnesCount).aux
                ),
                data
            );
        }
        assert!(
            hybrid_total <= fnw_total,
            "hybrid VCC ({hybrid_total}) should not write more ones than FNW ({fnw_total}) on biased data"
        );

        // Random data: stays within a few percent of the pure random-kernel
        // configuration.
        let pure = Vcc::paper_stored(256, &mut rng);
        let mut hybrid_ones = 0u64;
        let mut pure_ones = 0u64;
        for _ in 0..300 {
            let data = Block::random(&mut rng, 64);
            let ctx_h = WriteContext::new(Block::zeros(64), 0, hybrid.aux_bits());
            let ctx_p = WriteContext::new(Block::zeros(64), 0, pure.aux_bits());
            hybrid_ones += hybrid
                .encode(&data, &ctx_h, &OnesCount)
                .codeword
                .count_ones() as u64;
            pure_ones += pure.encode(&data, &ctx_p, &OnesCount).codeword.count_ones() as u64;
        }
        let ratio = hybrid_ones as f64 / pure_ones as f64;
        assert!(
            ratio < 1.10,
            "hybrid should stay close to pure VCC on random data ({ratio:.3})"
        );
    }
}
