//! Multi-level cell (MLC) symbol utilities.
//!
//! The paper's target device is a 2-bit-per-cell phase-change memory whose
//! four resistance levels are Gray coded across the resistance range
//! (Section IV-B, Table I).  A 64-bit data block therefore occupies 32 MLC
//! cells; symbol `s` of a block stores bit `2s` as its *right* (low) digit
//! and bit `2s + 1` as its *left* (high) digit.
//!
//! The key device observation reproduced here is that a *high-energy*
//! transition happens exactly when the right digit of the **new** symbol is
//! `1` (an intermediate resistance level that requires program-and-verify),
//! while transitions whose new right digit is `0` are cheap, and writing the
//! same symbol back costs (approximately) nothing thanks to differential
//! write.

use crate::block::Block;

/// Bit mask selecting the right (low, energy-determining) digit of every
/// MLC symbol in a 64-bit word — the load-bearing constant of the
/// digit-layout invariant this module owns.
pub(crate) const MLC_RIGHT_DIGITS: u64 = 0x5555_5555_5555_5555;

/// Number of bits stored per memory cell.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum CellKind {
    /// Single-level cell: one bit per cell.
    Slc,
    /// Multi-level cell: two bits (four resistance levels) per cell.
    #[default]
    Mlc,
}

impl CellKind {
    /// Bits stored by one cell of this kind.
    pub fn bits_per_cell(self) -> usize {
        match self {
            CellKind::Slc => 1,
            CellKind::Mlc => 2,
        }
    }

    /// Number of distinct levels a cell of this kind can hold.
    pub fn levels(self) -> usize {
        1 << self.bits_per_cell()
    }

    /// Number of cells needed to store `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a multiple of the cell width.
    pub fn cells_for_bits(self, bits: usize) -> usize {
        let b = self.bits_per_cell();
        assert!(
            bits.is_multiple_of(b),
            "{bits} bits is not a whole number of cells"
        );
        bits / b
    }
}

/// The Gray-coded sequence of MLC states spanning the resistance range, from
/// the fully-SET (lowest resistance) state to the fully-RESET state.
///
/// Index `i` of this array is the physical level; the value is the 2-bit
/// logical symbol stored at that level. This matches Table I's ordering
/// `00, 01, 11, 10`.
pub const MLC_GRAY_SEQUENCE: [u8; 4] = [0b00, 0b01, 0b11, 0b10];

/// Maps a 2-bit logical symbol to its physical level index (0..4) in the
/// Gray-coded resistance ladder.
///
/// # Examples
///
/// ```
/// use coset::symbol::{gray_level_of_symbol, MLC_GRAY_SEQUENCE};
/// for (level, sym) in MLC_GRAY_SEQUENCE.iter().enumerate() {
///     assert_eq!(gray_level_of_symbol(*sym) as usize, level);
/// }
/// ```
pub fn gray_level_of_symbol(symbol: u8) -> u8 {
    match symbol & 0b11 {
        0b00 => 0,
        0b01 => 1,
        0b11 => 2,
        0b10 => 3,
        _ => unreachable!(),
    }
}

/// Maps a physical level (0..4) to the Gray-coded 2-bit symbol stored there.
///
/// # Panics
///
/// Panics if `level >= 4`.
pub fn symbol_of_gray_level(level: u8) -> u8 {
    MLC_GRAY_SEQUENCE[level as usize]
}

/// Right (low, energy-determining) digit of a 2-bit MLC symbol.
#[inline]
pub fn right_digit(symbol: u8) -> u8 {
    symbol & 1
}

/// Left (high, energy-insensitive) digit of a 2-bit MLC symbol.
#[inline]
pub fn left_digit(symbol: u8) -> u8 {
    (symbol >> 1) & 1
}

/// Iterates the 2-bit symbols of a block, LSB-first.
///
/// # Panics
///
/// Panics if the block length is odd.
pub fn symbols(block: &Block) -> impl Iterator<Item = u8> + '_ {
    assert!(
        block.len().is_multiple_of(2),
        "MLC symbol iteration requires an even bit length"
    );
    (0..block.len() / 2).map(move |s| block.extract(2 * s, 2) as u8)
}

/// `MORTON_EXPAND_BYTE[b]` spreads byte `b` onto the even bit positions of
/// a 16-bit chunk — the byte-granular Morton expansion step.
static MORTON_EXPAND_BYTE: [u16; 256] = build_morton_expand_byte();

/// `MORTON_COMPRESS_NIBBLE[b]` packs the four even bits of byte `b` into a
/// nibble — the byte-granular Morton compression step.
static MORTON_COMPRESS_NIBBLE: [u8; 256] = build_morton_compress_nibble();

const fn build_morton_expand_byte() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut i = 0;
        while i < 8 {
            v |= (((b >> i) & 1) as u16) << (2 * i);
            i += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

const fn build_morton_compress_nibble() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u8;
        let mut i = 0;
        while i < 4 {
            v |= (((b >> (2 * i)) & 1) as u8) << i;
            i += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

/// Compresses the bits at even positions of `x` (0, 2, 4, …) into the low
/// 32 bits — the word-parallel inverse of Morton interleaving, one nibble
/// table lookup per byte.
#[inline]
fn compress_even_bits(x: u64) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 8 {
        out |= (MORTON_COMPRESS_NIBBLE[((x >> (8 * i)) & 0xFF) as usize] as u64) << (4 * i);
        i += 1;
    }
    out
}

/// Spreads the low 32 bits of `x` onto the even positions of a 64-bit word —
/// the word-parallel Morton expansion, one byte table lookup per byte.
#[inline]
fn expand_to_even_bits(x: u64) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 4 {
        out |= (MORTON_EXPAND_BYTE[((x >> (8 * i)) & 0xFF) as usize] as u64) << (16 * i);
        i += 1;
    }
    out
}

/// Spreads the low 32 bits of `x` onto the right-digit (even) positions of
/// a 64-bit symbol word. This is how the broadcast-SWAR VCC encoder turns a
/// right-digit kernel broadcast into a whole-block symbol-domain XOR mask.
#[inline]
pub fn spread_to_right_digits(x: u64) -> u64 {
    expand_to_even_bits(x)
}

/// Packs the bits at even positions of `x` into the low 32 bits — the
/// word-granular digit compression (right digits of a symbol word; shift
/// the word right by one first for left digits).
#[inline]
pub fn compress_even_bits_word(x: u64) -> u64 {
    compress_even_bits(x)
}

/// Interleaves up-to-32-bit left/right digit vectors into a symbol-group
/// word: symbol `s` takes right bit `s` at position `2s` and left bit `s`
/// at position `2s + 1`. Bits of the inputs above 32 are ignored.
#[inline]
pub fn interleave_word(left: u64, right: u64) -> u64 {
    expand_to_even_bits(right) | (expand_to_even_bits(left) << 1)
}

/// Word-parallel digit extraction: digit bits of every symbol (selected by
/// `shift` = 0 for right digits, 1 for left digits) packed densely into
/// `out`.
fn extract_digits_into(block: &Block, out: &mut Block, shift: u32) {
    assert!(block.len().is_multiple_of(2), "block length must be even");
    let n_sym = block.len() / 2;
    out.reset_zeros(n_sym);
    let src = block.words();
    let dst = out.words_mut();
    for (i, d) in dst.iter_mut().enumerate() {
        // SWAR-OK: shift selects the digit plane (0 or 1); the consumer
        // compress_even_bits() keeps only even bit positions, masking any
        // bit shifted in from the neighboring symbol.
        let lo = compress_even_bits(src[2 * i] >> shift);
        let hi = match src.get(2 * i + 1) {
            // SWAR-OK: same digit-plane select as `lo` above.
            Some(w) => compress_even_bits(w >> shift),
            None => 0,
        };
        *d = lo | (hi << 32);
    }
    out.mask_tail();
}

/// Extracts the left (high) digits of every MLC symbol of `block` into a new
/// block of half the length. Symbol `s`'s left digit becomes bit `s`.
///
/// This is the "L" vector of Algorithm 2 (the kernel-generation seed).
///
/// # Panics
///
/// Panics if the block length is odd.
pub fn extract_left_digits(block: &Block) -> Block {
    let mut out = Block::zeros(block.len() / 2);
    extract_left_digits_into(block, &mut out);
    out
}

/// In-place variant of [`extract_left_digits`]: writes the left digits into
/// `out`, reusing its allocation.
///
/// # Panics
///
/// Panics if the block length is odd.
pub fn extract_left_digits_into(block: &Block, out: &mut Block) {
    extract_digits_into(block, out, 1);
}

/// Extracts the right (low) digits of every MLC symbol of `block` into a new
/// block of half the length. Symbol `s`'s right digit becomes bit `s`.
///
/// # Panics
///
/// Panics if the block length is odd.
pub fn extract_right_digits(block: &Block) -> Block {
    let mut out = Block::zeros(block.len() / 2);
    extract_right_digits_into(block, &mut out);
    out
}

/// In-place variant of [`extract_right_digits`]: writes the right digits
/// into `out`, reusing its allocation.
///
/// # Panics
///
/// Panics if the block length is odd.
pub fn extract_right_digits_into(block: &Block, out: &mut Block) {
    extract_digits_into(block, out, 0);
}

/// Reassembles a full block from separate left-digit and right-digit vectors
/// (the inverses of [`extract_left_digits`] / [`extract_right_digits`]).
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn interleave_digits(left: &Block, right: &Block) -> Block {
    let mut out = Block::zeros(2 * left.len().max(1));
    interleave_digits_into(left, right, &mut out);
    out
}

/// In-place variant of [`interleave_digits`]: reassembles the full block
/// into `out`, reusing its allocation.
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn interleave_digits_into(left: &Block, right: &Block, out: &mut Block) {
    assert_eq!(
        left.len(),
        right.len(),
        "left/right digit vectors must have equal length"
    );
    let n_sym = left.len();
    out.reset_zeros(2 * n_sym);
    let l = left.words();
    let r = right.words();
    let dst = out.words_mut();
    for i in 0..l.len() {
        let lo = expand_to_even_bits(r[i]) | (expand_to_even_bits(l[i]) << 1);
        dst[2 * i] = lo;
        if let Some(d) = dst.get_mut(2 * i + 1) {
            *d = expand_to_even_bits(r[i] >> 32) | (expand_to_even_bits(l[i] >> 32) << 1);
        }
    }
    out.mask_tail();
}

/// Counts symbols in `new` whose write over `old` is a high-energy
/// transition: the symbol changes and the new symbol's right digit is `1`
/// (an intermediate Gray level), per Table I.
///
/// # Panics
///
/// Panics if lengths differ or are odd.
pub fn count_high_energy_transitions(old: &Block, new: &Block) -> u32 {
    assert_eq!(old.len(), new.len(), "length mismatch");
    assert!(old.len().is_multiple_of(2), "length must be even");
    let mut count = 0;
    for s in 0..old.len() / 2 {
        let o = old.extract(2 * s, 2) as u8;
        let n = new.extract(2 * s, 2) as u8;
        if o != n && right_digit(n) == 1 {
            count += 1;
        }
    }
    count
}

/// Counts symbols that change state at all (any programming event).
pub fn count_symbol_transitions(old: &Block, new: &Block) -> u32 {
    assert_eq!(old.len(), new.len(), "length mismatch");
    assert!(old.len().is_multiple_of(2), "length must be even");
    let mut count = 0;
    for s in 0..old.len() / 2 {
        if old.extract(2 * s, 2) != new.extract(2 * s, 2) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gray_sequence_adjacent_levels_differ_by_one_bit() {
        for w in MLC_GRAY_SEQUENCE.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1, "not a Gray code: {w:?}");
        }
    }

    #[test]
    fn gray_mapping_roundtrips() {
        for sym in 0..4u8 {
            assert_eq!(symbol_of_gray_level(gray_level_of_symbol(sym)), sym);
        }
    }

    #[test]
    fn cell_kind_properties() {
        assert_eq!(CellKind::Slc.bits_per_cell(), 1);
        assert_eq!(CellKind::Mlc.bits_per_cell(), 2);
        assert_eq!(CellKind::Mlc.levels(), 4);
        assert_eq!(CellKind::Mlc.cells_for_bits(64), 32);
        assert_eq!(CellKind::Slc.cells_for_bits(64), 64);
        assert_eq!(CellKind::default(), CellKind::Mlc);
    }

    #[test]
    #[should_panic(expected = "whole number of cells")]
    fn cells_for_bits_rejects_odd() {
        CellKind::Mlc.cells_for_bits(63);
    }

    #[test]
    fn digit_extraction_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let b = Block::random(&mut rng, 64);
            let left = extract_left_digits(&b);
            let right = extract_right_digits(&b);
            assert_eq!(left.len(), 32);
            assert_eq!(right.len(), 32);
            assert_eq!(interleave_digits(&left, &right), b);
        }
    }

    #[test]
    fn left_digits_match_manual_symbols() {
        // Block bits (LSB first): symbol 0 = bits 1..0 = 0b10 => left=1,right=0
        let b = Block::from_u64(0b01_10, 4);
        // symbol 0 = 0b10 (left 1, right 0); symbol 1 = 0b01 (left 0, right 1)
        let left = extract_left_digits(&b);
        let right = extract_right_digits(&b);
        assert_eq!(left.as_u64(), 0b01);
        assert_eq!(right.as_u64(), 0b10);
    }

    #[test]
    fn high_energy_transitions_follow_table_i() {
        // old symbol 00 -> new 01 : changes, new right digit 1 => high
        // old symbol 00 -> new 10 : changes, new right digit 0 => low
        // old symbol 01 -> new 01 : no change => not counted
        let mut old = Block::zeros(6);
        let mut new = Block::zeros(6);
        // symbol 0: old 00 -> new 01 (high)
        new.insert(0, 2, 0b01);
        // symbol 1: old 00 -> new 10 (low)
        new.insert(2, 2, 0b10);
        // symbol 2: old 01 -> new 01 (no change)
        old.insert(4, 2, 0b01);
        new.insert(4, 2, 0b01);
        assert_eq!(count_high_energy_transitions(&old, &new), 1);
        assert_eq!(count_symbol_transitions(&old, &new), 2);
    }

    /// Per-bit reference for the Morton expansion.
    fn expand_reference(x: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..32 {
            out |= ((x >> i) & 1) << (2 * i);
        }
        out
    }

    /// Per-bit reference for the Morton compression.
    fn compress_reference(x: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..32 {
            out |= ((x >> (2 * i)) & 1) << i;
        }
        out
    }

    #[test]
    fn morton_tables_match_per_bit_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..2000 {
            let x: u64 = rand::Rng::gen(&mut rng);
            assert_eq!(expand_to_even_bits(x), expand_reference(x), "expand {x:#x}");
            assert_eq!(
                compress_even_bits(x),
                compress_reference(x),
                "compress {x:#x}"
            );
            assert_eq!(compress_even_bits_word(x), compress_reference(x));
            assert_eq!(spread_to_right_digits(x), expand_reference(x));
        }
        // Expansion and compression invert each other on their domains.
        for _ in 0..200 {
            let x: u64 = rand::Rng::gen::<u32>(&mut rng) as u64;
            assert_eq!(compress_even_bits(expand_to_even_bits(x)), x);
        }
    }

    #[test]
    fn interleave_word_matches_digit_blocks() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..200 {
            let b = Block::random(&mut rng, 64);
            let left = extract_left_digits(&b);
            let right = extract_right_digits(&b);
            assert_eq!(interleave_word(left.as_u64(), right.as_u64()), b.as_u64());
        }
    }

    #[test]
    fn symbols_iterator_yields_all_cells() {
        let b = Block::from_u64(0b11_01_00_10, 8);
        let syms: Vec<u8> = symbols(&b).collect();
        assert_eq!(syms, vec![0b10, 0b00, 0b01, 0b11]);
    }
}
