//! Flip-N-Write, Data Block Inversion and biased coset coding (BCC).
//!
//! All three schemes of Section II-C share one mechanism: the data block is
//! divided into sub-blocks and each sub-block is written either directly or
//! inverted, using one auxiliary bit per sub-block to record the choice.
//!
//! * **DBI** uses one or two large sub-blocks per bus transfer.
//! * **Flip-N-Write** uses finer sub-blocks (the paper's lifetime study uses
//!   16-bit granularity).
//! * **BCC(n, N)** is the same scheme viewed as coset coding with
//!   `k = log2(N)` sections: the `2^k` biased coset candidates are all
//!   concatenations of all-zero / all-one section patterns.

use crate::block::Block;
use crate::context::WriteContext;
use crate::cost::{CostFunction, FixedCost};
use crate::encoder::{EncodeScratch, Encoded, Encoder};

/// Flip-N-Write-style selective inversion encoder.
///
/// # Examples
///
/// ```
/// use coset::{Block, Fnw, WriteContext, Encoder, cost::BitFlips};
///
/// let fnw = Fnw::with_sub_block(64, 16);
/// let data = Block::from_u64(u64::MAX, 64);
/// let ctx = WriteContext::blank(64, fnw.aux_bits());
/// let enc = fnw.encode(&data, &ctx, &BitFlips);
/// // Everything differs from the all-zero row, so all four sub-blocks invert.
/// assert_eq!(enc.codeword.count_ones(), 0);
/// assert_eq!(fnw.decode(&enc.codeword, enc.aux), data);
/// ```
#[derive(Debug, Clone)]
pub struct Fnw {
    block_bits: usize,
    sub_bits: usize,
    name: String,
}

impl Fnw {
    /// Creates an encoder over `block_bits`-bit blocks with `sub_bits`-bit
    /// sub-blocks (one auxiliary bit per sub-block).
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` does not divide `block_bits`, if `sub_bits > 64`,
    /// or if either is zero.
    pub fn with_sub_block(block_bits: usize, sub_bits: usize) -> Self {
        assert!(block_bits > 0 && sub_bits > 0, "widths must be non-zero");
        assert!(
            sub_bits <= 64,
            "sub-blocks wider than 64 bits are unsupported"
        );
        assert!(
            block_bits.is_multiple_of(sub_bits),
            "sub-block width {sub_bits} must divide block width {block_bits}"
        );
        Fnw {
            block_bits,
            sub_bits,
            name: format!("fnw{sub_bits}"),
        }
    }

    /// Creates a BCC(n, N)-style encoder: `log2(n_cosets)` sections.
    ///
    /// # Panics
    ///
    /// Panics if `n_cosets` is not a power of two ≥ 2 or the section count
    /// does not divide `block_bits`.
    pub fn with_cosets(block_bits: usize, n_cosets: usize) -> Self {
        assert!(
            n_cosets.is_power_of_two() && n_cosets >= 2,
            "coset count must be a power of two ≥ 2"
        );
        let sections = n_cosets.trailing_zeros() as usize;
        assert!(
            block_bits.is_multiple_of(sections),
            "{sections} sections do not divide a {block_bits}-bit block"
        );
        let mut f = Self::with_sub_block(block_bits, block_bits / sections);
        f.name = format!("bcc{n_cosets}");
        f
    }

    /// Data Block Inversion: a single sub-block covering the whole block.
    pub fn dbi(block_bits: usize) -> Self {
        let mut f = Self::with_sub_block(block_bits, block_bits.min(64));
        if block_bits <= 64 {
            f.name = "dbi".to_string();
        }
        f
    }

    /// Number of sub-blocks (and auxiliary bits).
    pub fn sections(&self) -> usize {
        self.block_bits / self.sub_bits
    }

    /// Width of each sub-block in bits.
    pub fn sub_block_bits(&self) -> usize {
        self.sub_bits
    }
}

impl Encoder for Fnw {
    fn name(&self) -> &str {
        &self.name
    }

    fn block_bits(&self) -> usize {
        self.block_bits
    }

    fn aux_bits(&self) -> u32 {
        self.sections() as u32
    }

    fn encode(&self, data: &Block, ctx: &WriteContext, cost: &dyn CostFunction) -> Encoded {
        let mut out = Encoded::placeholder(self.block_bits);
        self.encode_into(data, ctx, cost, &mut EncodeScratch::new(), &mut out);
        out
    }

    fn encode_into(
        &self,
        data: &Block,
        ctx: &WriteContext,
        cost: &dyn CostFunction,
        _scratch: &mut EncodeScratch,
        out: &mut Encoded,
    ) {
        assert_eq!(data.len(), self.block_bits, "data width mismatch");
        assert_eq!(ctx.data_bits(), self.block_bits, "context width mismatch");
        let sub_mask = if self.sub_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.sub_bits) - 1
        };
        // Broadcast-SWAR path: a sub-block's two candidates are the data
        // word and its bitwise NOT, so each word's class planes are derived
        // twice and every section is selected with two masked popcount
        // costs — no per-section extract/insert at all. Requires sections
        // that do not straddle word boundaries and cell-aligned sections.
        let sections_tile_words = 64 % self.sub_bits == 0 || self.block_bits <= 64;
        if sections_tile_words {
            if let Some(model) = ctx.cost_model(cost) {
                if self
                    .sub_bits
                    .is_multiple_of(model.classes().cell_bits() as usize)
                {
                    let words = data.words();
                    let mut aux = 0u64;
                    let mut data_cost = FixedCost::ZERO;
                    out.codeword.reset_zeros(self.block_bits);
                    let mut j = 0usize;
                    for (w, &dw) in words.iter().enumerate() {
                        if j >= self.sections() {
                            break;
                        }
                        let (direct, inverted) = model.planes_pair(w, dw, u64::MAX);
                        let base = w * 64;
                        let mut flip = 0u64;
                        let mut sh = 0usize;
                        while sh < 64 && j < self.sections() && base + sh < self.block_bits {
                            let pmask = sub_mask << sh;
                            let c_direct = model.plane_cost(&direct, pmask);
                            let c_inverted = model.plane_cost(&inverted, pmask);
                            let (take_inv, chosen) = FixedCost::select_min(c_direct, c_inverted);
                            aux |= take_inv << j;
                            flip |= pmask & take_inv.wrapping_neg();
                            data_cost += chosen;
                            sh += self.sub_bits;
                            j += 1;
                        }
                        out.codeword
                            .insert_word_masked(w, dw ^ flip, model.word_mask(w));
                    }
                    out.aux = aux;
                    out.cost = (data_cost + model.aux_cost(aux)).to_cost();
                    return;
                }
            }
        }
        // FNW picks per-section, so the winner is assembled directly in the
        // output codeword — no candidate buffers needed.
        out.codeword.reset_zeros(self.block_bits);
        let mut aux = 0u64;
        let mut data_cost = crate::cost::Cost::ZERO;
        for j in 0..self.sections() {
            let start = j * self.sub_bits;
            let direct = data.extract(start, self.sub_bits);
            let inverted = !direct & sub_mask;
            let c_direct = ctx.range_cost(cost, direct, start, self.sub_bits);
            let c_inverted = ctx.range_cost(cost, inverted, start, self.sub_bits);
            if c_inverted.is_better_than(&c_direct) {
                out.codeword.insert(start, self.sub_bits, inverted);
                aux |= 1u64 << j;
                data_cost = data_cost + c_inverted;
            } else {
                out.codeword.insert(start, self.sub_bits, direct);
                data_cost = data_cost + c_direct;
            }
        }
        out.aux = aux;
        out.cost = data_cost + ctx.aux_cost(cost, aux);
    }

    fn decode(&self, codeword: &Block, aux: u64) -> Block {
        assert_eq!(codeword.len(), self.block_bits, "codeword width mismatch");
        let sub_mask = if self.sub_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.sub_bits) - 1
        };
        let mut out = Block::zeros(self.block_bits);
        for j in 0..self.sections() {
            let start = j * self.sub_bits;
            let stored = codeword.extract(start, self.sub_bits);
            let value = if (aux >> j) & 1 == 1 {
                !stored & sub_mask
            } else {
                stored
            };
            out.insert(start, self.sub_bits, value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BitFlips, OnesCount, SawCount, WriteEnergy};
    use crate::encoder::check_roundtrip;
    use crate::StuckBits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constructors() {
        let f = Fnw::with_sub_block(64, 16);
        assert_eq!(f.sections(), 4);
        assert_eq!(f.aux_bits(), 4);
        assert_eq!(f.sub_block_bits(), 16);
        assert_eq!(f.name(), "fnw16");

        let b = Fnw::with_cosets(64, 16);
        assert_eq!(b.sections(), 4);
        assert_eq!(b.name(), "bcc16");

        let d = Fnw::dbi(64);
        assert_eq!(d.sections(), 1);
        assert_eq!(d.name(), "dbi");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_sub_block() {
        Fnw::with_sub_block(64, 24);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_cosets() {
        Fnw::with_cosets(64, 12);
    }

    #[test]
    fn never_worse_than_unencoded_on_data_bits() {
        let fnw = Fnw::with_sub_block(64, 16);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let data = Block::random(&mut rng, 64);
            let old = Block::random(&mut rng, 64);
            let ctx = WriteContext::new(old.clone(), 0, fnw.aux_bits());
            let enc = fnw.encode(&data, &ctx, &BitFlips);
            let baseline = data.hamming_distance(&old);
            let enc_flips = enc.codeword.hamming_distance(&old);
            assert!(enc_flips <= baseline, "FNW increased data-bit flips");
        }
    }

    #[test]
    fn ones_minimization_on_blank_row_halves_weight() {
        let fnw = Fnw::with_sub_block(64, 16);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let data = Block::random(&mut rng, 64);
            let ctx = WriteContext::blank(64, fnw.aux_bits());
            let enc = fnw.encode(&data, &ctx, &OnesCount);
            // Every 16-bit sub-block ends up with at most 8 ones.
            for j in 0..4 {
                let w = enc.codeword.extract(j * 16, 16).count_ones();
                assert!(w <= 8, "sub-block weight {w} > 8");
            }
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for sub in [8usize, 16, 32, 64] {
            let fnw = Fnw::with_sub_block(64, sub);
            check_roundtrip(&fnw, &BitFlips, &mut rng, 100);
        }
        let wide = Fnw::with_sub_block(512, 16);
        check_roundtrip(&wide, &OnesCount, &mut rng, 20);
    }

    #[test]
    fn roundtrip_with_energy_cost() {
        let mut rng = StdRng::seed_from_u64(8);
        let fnw = Fnw::with_sub_block(64, 16);
        check_roundtrip(&fnw, &WriteEnergy::mlc(), &mut rng, 100);
    }

    #[test]
    fn masks_single_stuck_cell_when_possible() {
        let fnw = Fnw::with_sub_block(64, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let mut masked = 0;
        let trials = 200;
        for _ in 0..trials {
            let data = Block::random(&mut rng, 64);
            let mut stuck = StuckBits::none(64);
            let idx = rng.gen_range(0..64);
            let val = rng.gen_bool(0.5);
            stuck.stick_bit(idx, val);
            let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, fnw.aux_bits())
                .with_stuck(stuck.clone());
            let enc = fnw.encode(&data, &ctx, &SawCount);
            if stuck.saw_count(&enc.codeword) == 0 {
                masked += 1;
            }
            // Data must still decode correctly regardless.
            assert_eq!(fnw.decode(&enc.codeword, enc.aux), data);
        }
        // With two candidates per sub-block a single stuck bit is always
        // maskable: one of {d, !d} matches any stuck value.
        assert_eq!(masked, trials);
    }
}
