//! Differential oracle suite pinning the broadcast-SWAR cost engine to the
//! scalar reference.
//!
//! Two families of properties:
//!
//! 1. **Cost-function level** — the word-batched
//!    [`CostFunction::cost_words`] entry point must agree with the scalar
//!    [`CostFunction::field_cost`] (via `region_cost`) on arbitrary
//!    destination planes, for all five objectives.
//! 2. **Encoder level** — every broadcast-path encoder (VCC
//!    stored/generated/hybrid, RCC, FNW/DBI/BCC, Flipcy) must produce a
//!    bit-identical [`Encoded`] (codeword, aux **and** cost) to the same
//!    encoder running with [`ScalarOnly`], which hides the objective's
//!    transition classes and forces the retained scalar path — across
//!    SLC/MLC objectives, stuck-cell incidences {0, 1e-2, 5e-2}, and
//!    random destination state.
//!
//! Deterministic smoke tests per objective keep one pinned example per
//! class shape in the suite even if the property sampling shifts.

use coset::cost::{
    opt_energy_then_saw, opt_saw_then_energy, BitFlips, CostFunction, OnesCount, SawCount,
    ScalarOnly, WriteEnergy,
};
use coset::{
    Block, EncodeScratch, Encoded, Encoder, Flipcy, Fnw, Rcc, StuckBits, Unencoded, Vcc,
    WriteContext,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five paper objectives (plus the SLC energy shape), paired with their
/// scalar-forced twins.
fn objective_pairs() -> Vec<(Box<dyn CostFunction>, Box<dyn CostFunction>)> {
    vec![
        (Box::new(OnesCount), Box::new(ScalarOnly(OnesCount))),
        (Box::new(BitFlips), Box::new(ScalarOnly(BitFlips))),
        (Box::new(SawCount), Box::new(ScalarOnly(SawCount))),
        (
            Box::new(WriteEnergy::mlc()),
            Box::new(ScalarOnly(WriteEnergy::mlc())),
        ),
        (
            Box::new(WriteEnergy::slc()),
            Box::new(ScalarOnly(WriteEnergy::slc())),
        ),
        (
            Box::new(opt_saw_then_energy()),
            Box::new(ScalarOnly(opt_saw_then_energy())),
        ),
        (
            Box::new(opt_energy_then_saw()),
            Box::new(ScalarOnly(opt_energy_then_saw())),
        ),
    ]
}

/// Random stuck-at state at a given per-cell incidence. MLC sticks whole
/// 2-bit symbols (like the fault model); SLC sticks single bits.
fn random_stuck(rng: &mut StdRng, bits: usize, incidence: f64, mlc: bool) -> StuckBits {
    let mut stuck = StuckBits::none(bits);
    if mlc {
        for cell in 0..bits / 2 {
            if rng.gen_bool(incidence) {
                stuck.stick_cell(cell, 2, rng.gen_range(0..4u64));
            }
        }
    } else {
        for bit in 0..bits {
            if rng.gen_bool(incidence) {
                stuck.stick_bit(bit, rng.gen_bool(0.5));
            }
        }
    }
    stuck
}

/// A random write context over `bits` data bits.
fn random_ctx(
    rng: &mut StdRng,
    bits: usize,
    aux_bits: u32,
    incidence: f64,
    mlc: bool,
) -> WriteContext {
    let old = Block::random(rng, bits);
    let mut ctx = WriteContext::new(old, rng.gen::<u64>() >> (64 - aux_bits.max(1)), aux_bits)
        .with_stuck(random_stuck(rng, bits, incidence, mlc));
    if incidence > 0.0 {
        let aux_mask: u64 = rng.gen::<u64>() & rng.gen::<u64>() & 0xFF;
        ctx = ctx.with_stuck_aux(aux_mask, rng.gen::<u64>() & 0xFF);
    }
    ctx
}

/// All broadcast-path encoders under test for 64-bit blocks.
fn encoders(seed: u64) -> Vec<Box<dyn Encoder>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Box::new(Unencoded::new(64)),
        Box::new(Vcc::paper_stored(256, &mut rng)),
        Box::new(Vcc::paper_stored(32, &mut rng)),
        Box::new(Vcc::paper_mlc(256)),
        Box::new(Vcc::paper_mlc(32)),
        Box::new(Vcc::hybrid(64, 16, 8, &mut rng)),
        Box::new(Rcc::random(64, 32, &mut rng)),
        Box::new(Rcc::random_with_identity(64, 16, &mut rng)),
        Box::new(Fnw::with_sub_block(64, 16)),
        Box::new(Fnw::with_sub_block(64, 8)),
        Box::new(Fnw::dbi(64)),
        Box::new(Fnw::with_cosets(64, 16)),
        Box::new(Flipcy::new(64)),
    ]
}

/// Asserts the fast and scalar routes produce bit-identical `Encoded`s.
fn assert_encoders_match(
    encoder: &dyn Encoder,
    data: &Block,
    ctx: &WriteContext,
    fast: &dyn CostFunction,
    scalar: &dyn CostFunction,
    scratch: &mut EncodeScratch,
) {
    let mut out_fast = Encoded::placeholder(encoder.block_bits());
    let mut out_scalar = Encoded::placeholder(encoder.block_bits());
    encoder.encode_into(data, ctx, fast, scratch, &mut out_fast);
    encoder.encode_into(data, ctx, scalar, scratch, &mut out_scalar);
    assert_eq!(
        out_fast.codeword,
        out_scalar.codeword,
        "codeword diverged: {} under {}",
        encoder.name(),
        fast.name()
    );
    assert_eq!(
        out_fast.aux,
        out_scalar.aux,
        "aux diverged: {} under {}",
        encoder.name(),
        fast.name()
    );
    assert_eq!(
        out_fast.cost,
        out_scalar.cost,
        "cost diverged: {} under {}",
        encoder.name(),
        fast.name()
    );
    // Round-trip sanity where it must hold exactly: a fault-free
    // destination stores the codeword verbatim. (With stuck cells, read
    // corruption is scheme-specific — generated VCC reseeds from stored
    // left digits, Flipcy's two's complement propagates carries — and is
    // covered by the scheme's own tests.)
    if ctx.stuck.stuck_count() == 0 {
        assert_eq!(
            &encoder.decode(&out_fast.codeword, out_fast.aux),
            data,
            "round-trip failed: {} under {}",
            encoder.name(),
            fast.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `cost_words` ≡ scalar `field_cost` on arbitrary multi-word regions
    /// for every objective (the MLC objectives see symbol-frozen masks).
    #[test]
    fn cost_words_matches_scalar_field_cost(seed in any::<u64>(), words in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = words * 64 - if words > 1 { 2 * (seed as usize % 16) } else { 0 };
        for (fast, scalar) in objective_pairs() {
            let new: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let old: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            // Symbol-granular stuck mask (valid for both MLC and SLC).
            let sm: Vec<u64> = (0..words)
                .map(|_| {
                    let m = rng.gen::<u64>() & rng.gen::<u64>() & 0x5555_5555_5555_5555;
                    m | (m << 1)
                })
                .collect();
            let sv: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let batched = fast.cost_words(&new, &old, &sm, &sv, bits);
            let reference = scalar.region_cost(&new, &old, &sm, &sv, bits);
            prop_assert_eq!(
                batched, reference,
                "cost_words diverged for {} over {} bits", fast.name(), bits
            );
        }
    }

    /// Every broadcast-path encoder matches its scalar-forced twin exactly
    /// (codeword, aux, cost) across objectives and stuck incidences.
    #[test]
    fn encoders_match_scalar_oracle(seed in any::<u64>(), data in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = Block::from_u64(data, 64);
        let mut scratch = EncodeScratch::new();
        for incidence in [0.0, 1e-2, 5e-2] {
            for encoder in encoders(seed) {
                for (fast, scalar) in objective_pairs() {
                    let mlc = fast.name().contains("mlc") || fast.name().contains("saw");
                    let ctx = random_ctx(
                        &mut rng,
                        64,
                        encoder.aux_bits(),
                        incidence,
                        mlc,
                    );
                    assert_encoders_match(
                        encoder.as_ref(),
                        &data,
                        &ctx,
                        fast.as_ref(),
                        scalar.as_ref(),
                        &mut scratch,
                    );
                }
            }
        }
    }

    /// The batched line entry point agrees with the scalar route word by
    /// word (the exact call shape the write pipeline drives).
    #[test]
    fn encode_line_matches_scalar_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let line: [u64; 8] = rng.gen();
        let mut scratch = EncodeScratch::new();
        let mut out_fast = Vec::new();
        let mut out_scalar = Vec::new();
        for encoder in [
            Box::new(Vcc::paper_mlc(256)) as Box<dyn Encoder>,
            Box::new(Vcc::paper_stored(256, &mut rng)),
            Box::new(Rcc::random(64, 32, &mut rng)),
        ] {
            let ctxs: Vec<WriteContext> = (0..8)
                .map(|_| random_ctx(&mut rng, 64, encoder.aux_bits(), 1e-2, true))
                .collect();
            let fast = opt_saw_then_energy();
            let scalar = ScalarOnly(opt_saw_then_energy());
            encoder.encode_line(&line, &ctxs, &fast, &mut scratch, &mut out_fast);
            encoder.encode_line(&line, &ctxs, &scalar, &mut scratch, &mut out_scalar);
            prop_assert_eq!(&out_fast, &out_scalar, "encode_line diverged for {}", encoder.name());
        }
    }
}

/// One pinned deterministic example per objective: VCC-256 generated over a
/// faulty destination, fast ≡ scalar.
#[test]
fn deterministic_smoke_per_objective() {
    let mut rng = StdRng::seed_from_u64(0xC0_5E7);
    let vcc = Vcc::paper_mlc(256);
    let data = Block::random(&mut rng, 64);
    let ctx = random_ctx(&mut rng, 64, vcc.aux_bits(), 5e-2, true);
    let mut scratch = EncodeScratch::new();
    for (fast, scalar) in objective_pairs() {
        assert!(
            fast.classes().is_some(),
            "{} must compile to transition classes",
            fast.name()
        );
        assert!(
            scalar.classes().is_none(),
            "ScalarOnly must hide {}'s classes",
            scalar.name()
        );
        assert_encoders_match(
            &vcc,
            &data,
            &ctx,
            fast.as_ref(),
            scalar.as_ref(),
            &mut scratch,
        );
    }
}

/// Stored-kernel VCC and the hybrid variant on SLC-style (single-bit) stuck
/// cells under each cell-kind's energy objective.
#[test]
fn deterministic_smoke_stored_and_hybrid_slc() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let stored = Vcc::paper_stored(256, &mut rng);
    let hybrid = Vcc::hybrid(64, 16, 8, &mut rng);
    let mut scratch = EncodeScratch::new();
    for _ in 0..20 {
        let data = Block::random(&mut rng, 64);
        for enc in [&stored, &hybrid] {
            let ctx = random_ctx(&mut rng, 64, enc.aux_bits(), 5e-2, false);
            assert_encoders_match(
                enc,
                &data,
                &ctx,
                &WriteEnergy::slc(),
                &ScalarOnly(WriteEnergy::slc()),
                &mut scratch,
            );
            let ctx = random_ctx(&mut rng, 64, enc.aux_bits(), 1e-2, true);
            assert_encoders_match(
                enc,
                &data,
                &ctx,
                &WriteEnergy::mlc(),
                &ScalarOnly(WriteEnergy::mlc()),
                &mut scratch,
            );
        }
    }
}

/// Multi-word blocks (512-bit Flipcy/FNW, wide stored VCC): the batched
/// route walks several backing words per candidate and must still match
/// the scalar oracle exactly.
#[test]
fn deterministic_smoke_multiword_blocks() {
    let mut rng = StdRng::seed_from_u64(0x5112);
    let mut scratch = EncodeScratch::new();
    let encoders: Vec<Box<dyn Encoder>> = {
        let mut erng = StdRng::seed_from_u64(0x5113);
        vec![
            Box::new(Flipcy::new(512)),
            Box::new(Fnw::with_sub_block(512, 16)),
            Box::new(Vcc::stored(128, 16, 8, &mut erng)),
        ]
    };
    for _ in 0..15 {
        for encoder in &encoders {
            let bits = encoder.block_bits();
            let data = Block::random(&mut rng, bits);
            for incidence in [0.0, 5e-2] {
                let ctx = random_ctx(&mut rng, bits, encoder.aux_bits(), incidence, true);
                for (fast, scalar) in objective_pairs() {
                    assert_encoders_match(
                        encoder.as_ref(),
                        &data,
                        &ctx,
                        fast.as_ref(),
                        scalar.as_ref(),
                        &mut scratch,
                    );
                }
            }
        }
    }
}

/// A custom (non-per-class) energy table must decline the fast path and
/// still encode correctly through the scalar fallback.
#[test]
fn custom_energy_table_takes_scalar_path() {
    use coset::cost::TransitionEnergy;
    let mut weird = [[1.5f64; 4]; 4];
    weird[2][3] = 9.25;
    let custom = WriteEnergy::new(TransitionEnergy::custom_mlc(weird));
    assert!(
        custom.classes().is_none(),
        "lopsided table must not compile"
    );
    let mut rng = StdRng::seed_from_u64(3);
    let vcc = Vcc::paper_mlc(64);
    let data = Block::random(&mut rng, 64);
    let ctx = WriteContext::new(Block::random(&mut rng, 64), 0, vcc.aux_bits());
    let enc = vcc.encode(&data, &ctx, &custom);
    assert_eq!(vcc.decode(&enc.codeword, enc.aux), data);
}
