//! Property-based tests for the coset-coding crate.
//!
//! These check the invariants every encoder must satisfy on arbitrary
//! inputs: lossless round-trips, auxiliary budgets, candidate optimality
//! properties, and the structural identities of the bit-block container.

use coset::block::parse_bits;
use coset::cost::{BitFlips, OnesCount, SawCount, WriteEnergy};
use coset::symbol::{extract_left_digits, extract_right_digits, interleave_digits};
use coset::{
    Block, EncodeScratch, Encoded, Encoder, Flipcy, Fnw, GeneratorConfig, KernelSet, Rcc,
    StuckBits, Unencoded, Vcc, WriteContext,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a 64-bit data word.
fn word() -> impl Strategy<Value = u64> {
    any::<u64>()
}

/// Builds every encoder under test for a 64-bit block.
fn encoders(seed: u64) -> Vec<Box<dyn Encoder>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Box::new(Unencoded::new(64)),
        Box::new(Fnw::with_sub_block(64, 16)),
        Box::new(Fnw::dbi(64)),
        Box::new(Fnw::with_cosets(64, 16)),
        Box::new(Flipcy::new(64)),
        Box::new(Rcc::random(64, 32, &mut rng)),
        Box::new(Vcc::paper_stored(64, &mut rng)),
        Box::new(Vcc::paper_mlc(64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every encoder round-trips arbitrary data against arbitrary row state
    /// under several cost functions.
    #[test]
    fn all_encoders_roundtrip_arbitrary_words(
        data in word(),
        old in word(),
        old_aux in 0u64..256,
        seed in any::<u64>(),
    ) {
        let data_block = Block::from_u64(data, 64);
        let old_block = Block::from_u64(old, 64);
        for encoder in encoders(seed) {
            let ctx = WriteContext::new(old_block.clone(), old_aux, encoder.aux_bits());
            for cost in [&BitFlips as &dyn coset::CostFunction, &OnesCount, &WriteEnergy::mlc()] {
                let enc = encoder.encode(&data_block, &ctx, cost);
                prop_assert_eq!(
                    encoder.decode(&enc.codeword, enc.aux),
                    data_block.clone(),
                    "{} failed round-trip", encoder.name()
                );
                // The auxiliary word fits the declared budget.
                if encoder.aux_bits() < 64 {
                    prop_assert!(enc.aux < (1u64 << encoder.aux_bits()));
                }
                // Codeword width is preserved.
                prop_assert_eq!(enc.codeword.len(), 64);
            }
        }
    }

    /// Encoders never do worse than unencoded writeback on the bit-flip
    /// objective when an identity candidate is available (FNW, Flipcy).
    #[test]
    fn selective_inversion_never_increases_flips(data in word(), old in word()) {
        let data_block = Block::from_u64(data, 64);
        let old_block = Block::from_u64(old, 64);
        let baseline = data_block.hamming_distance(&old_block);
        let fnw = Fnw::with_sub_block(64, 16);
        let flipcy = Flipcy::new(64);
        for encoder in [&fnw as &dyn Encoder, &flipcy] {
            let ctx = WriteContext::new(old_block.clone(), 0, encoder.aux_bits());
            let enc = encoder.encode(&data_block, &ctx, &BitFlips);
            prop_assert!(
                enc.codeword.hamming_distance(&old_block) <= baseline,
                "{} increased data-bit flips", encoder.name()
            );
        }
    }

    /// VCC with a stored kernel set finds exactly the optimum that an
    /// exhaustive search over its virtual cosets finds (data-portion cost).
    #[test]
    fn vcc_equals_exhaustive_search_over_virtual_cosets(
        data in word(),
        old in word(),
        kernel_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(kernel_seed);
        let kernels = KernelSet::random(16, 4, &mut rng);
        let vcc = Vcc::with_kernels(64, kernels.clone());
        let rcc = Rcc::new(64, kernels.virtual_cosets(4));
        let data_block = Block::from_u64(data, 64);
        let old_block = Block::from_u64(old, 64);
        let ctx = WriteContext::new(old_block.clone(), 0, 0);
        let ev = vcc.encode(&data_block, &ctx, &BitFlips);
        let er = rcc.encode(&data_block, &ctx, &BitFlips);
        prop_assert_eq!(
            ev.codeword.hamming_distance(&old_block),
            er.codeword.hamming_distance(&old_block)
        );
    }

    /// A single stuck bit anywhere in the word is always masked by FNW at
    /// 16-bit granularity under the SAW objective, and decode still returns
    /// the original data.
    #[test]
    fn fnw_masks_any_single_stuck_bit(
        data in word(),
        old in word(),
        stuck_idx in 0usize..64,
        stuck_val in any::<bool>(),
    ) {
        let fnw = Fnw::with_sub_block(64, 16);
        let mut stuck = StuckBits::none(64);
        stuck.stick_bit(stuck_idx, stuck_val);
        let ctx = WriteContext::new(Block::from_u64(old, 64), 0, fnw.aux_bits())
            .with_stuck(stuck.clone());
        let data_block = Block::from_u64(data, 64);
        let enc = fnw.encode(&data_block, &ctx, &SawCount);
        prop_assert_eq!(stuck.saw_count(&enc.codeword), 0);
        prop_assert_eq!(fnw.decode(&enc.codeword, enc.aux), data_block);
    }

    /// MLC digit extraction and re-interleaving are mutual inverses.
    #[test]
    fn digit_interleaving_roundtrip(words in prop::collection::vec(any::<u64>(), 1..8)) {
        let len = words.len() * 64;
        let block = Block::from_words(&words, len);
        let left = extract_left_digits(&block);
        let right = extract_right_digits(&block);
        prop_assert_eq!(interleave_digits(&left, &right), block);
    }

    /// Block slice/splice/extract/insert are consistent.
    #[test]
    fn block_slice_splice_consistency(
        words in prop::collection::vec(any::<u64>(), 2..8),
        start_frac in 0.0f64..1.0,
        width in 1usize..64,
    ) {
        let len = words.len() * 64;
        let block = Block::from_words(&words, len);
        let start = ((len - width) as f64 * start_frac) as usize;
        let slice = block.slice(start, width);
        prop_assert_eq!(slice.len(), width);
        prop_assert_eq!(slice.extract(0, width), block.extract(start, width));
        let mut copy = Block::zeros(len);
        copy.splice(start, &slice);
        prop_assert_eq!(copy.extract(start, width), block.extract(start, width));
    }

    /// Hamming distance is a metric-ish: symmetric, zero iff equal, and the
    /// XOR identity `d(a,b) = weight(a ^ b)` holds.
    #[test]
    fn hamming_distance_identities(a in word(), b in word()) {
        let ba = Block::from_u64(a, 64);
        let bb = Block::from_u64(b, 64);
        prop_assert_eq!(ba.hamming_distance(&bb), bb.hamming_distance(&ba));
        prop_assert_eq!(ba.hamming_distance(&bb), ba.xor(&bb).count_ones());
        prop_assert_eq!(ba.hamming_distance(&ba), 0);
    }

    /// Display/parse round-trip for blocks of arbitrary width.
    #[test]
    fn block_display_parse_roundtrip(words in prop::collection::vec(any::<u64>(), 1..4), trim in 0usize..63) {
        let len = words.len() * 64 - trim;
        let block = Block::from_words(&words, len);
        let text = block.to_string();
        prop_assert_eq!(parse_bits(&text), block);
    }

    /// Algorithm 2 generates the requested number of kernels of the
    /// requested width from any sufficiently long seed, deterministically.
    #[test]
    fn kernel_generator_shape(seed_word in any::<u64>(), r_exp in 0u32..5) {
        let seed = Block::from_u64(seed_word, 32);
        let r = 1usize << r_exp;
        let cfg = GeneratorConfig::new(8, r);
        let a = coset::generate_kernels(&seed, cfg);
        let b = coset::generate_kernels(&seed, cfg);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(a.len(), r);
        prop_assert_eq!(a.kernel_bits(), 8);
        for i in 0..a.len() {
            prop_assert!(a.kernel(i) < 256);
        }
    }

    /// The generated-kernel VCC never modifies the left digits of the block
    /// (the property its decoder depends on).
    #[test]
    fn generated_vcc_preserves_left_digits(data in word(), old in word()) {
        let vcc = Vcc::paper_mlc(128);
        let data_block = Block::from_u64(data, 64);
        let ctx = WriteContext::new(Block::from_u64(old, 64), 0, vcc.aux_bits());
        let enc = vcc.encode(&data_block, &ctx, &WriteEnergy::mlc());
        prop_assert_eq!(
            extract_left_digits(&enc.codeword),
            extract_left_digits(&data_block)
        );
    }

    /// The zero-allocation session API is bit-identical to the legacy
    /// `encode` for every encoder × cost-function pair: same codeword, same
    /// auxiliary bits, same cost — even when one warm scratch and one output
    /// slot are reused across encoders, cost functions and stuck-cell
    /// states.
    #[test]
    fn encode_into_matches_encode_for_every_encoder_and_cost(
        data in word(),
        old in word(),
        old_aux in 0u64..256,
        seed in any::<u64>(),
        stuck_cell in 0usize..32,
        stuck_sym in 0u64..4,
    ) {
        let data_block = Block::from_u64(data, 64);
        let old_block = Block::from_u64(old, 64);
        let mut stuck = StuckBits::none(64);
        stuck.stick_cell(stuck_cell, 2, stuck_sym);
        let mut scratch = EncodeScratch::new();
        let mut out = Encoded::placeholder(64);
        for encoder in encoders(seed) {
            let ctx = WriteContext::new(old_block.clone(), old_aux, encoder.aux_bits())
                .with_stuck(stuck.clone());
            for cost in [
                &BitFlips as &dyn coset::CostFunction,
                &OnesCount,
                &SawCount,
                &WriteEnergy::mlc(),
            ] {
                let legacy = encoder.encode(&data_block, &ctx, cost);
                encoder.encode_into(&data_block, &ctx, cost, &mut scratch, &mut out);
                prop_assert_eq!(
                    &out, &legacy,
                    "encode_into diverged from encode for {} under {}",
                    encoder.name(), cost.name()
                );
            }
        }
    }

    /// `encode_line` encodes a whole 512-bit line exactly as eight
    /// independent `encode` calls would, for every encoder.
    #[test]
    fn encode_line_matches_per_word_encode(
        line in any::<[u64; 8]>(),
        olds in any::<[u64; 8]>(),
        seed in any::<u64>(),
    ) {
        let mut scratch = EncodeScratch::new();
        let mut outs: Vec<Encoded> = Vec::new();
        for encoder in encoders(seed) {
            let ctxs: Vec<WriteContext> = olds
                .iter()
                .map(|o| WriteContext::new(Block::from_u64(*o, 64), 0, encoder.aux_bits()))
                .collect();
            for cost in [&BitFlips as &dyn coset::CostFunction, &WriteEnergy::mlc()] {
                encoder.encode_line(&line, &ctxs, cost, &mut scratch, &mut outs);
                prop_assert_eq!(outs.len(), 8);
                for (w, (data, ctx)) in line.iter().zip(ctxs.iter()).enumerate() {
                    let legacy = encoder.encode(&Block::from_u64(*data, 64), ctx, cost);
                    prop_assert_eq!(
                        &outs[w], &legacy,
                        "encode_line word {} diverged for {} under {}",
                        w, encoder.name(), cost.name()
                    );
                }
            }
        }
    }

    /// Cost functions are non-negative and additive over disjoint regions.
    #[test]
    fn costs_are_nonnegative_and_additive(new in word(), old in word()) {
        use coset::cost::Field;
        for cf in [&BitFlips as &dyn coset::CostFunction, &OnesCount, &WriteEnergy::mlc()] {
            let whole = cf.field_cost(&Field::new(new, old, 64));
            let lo = cf.field_cost(&Field::new(new & 0xFFFF_FFFF, old & 0xFFFF_FFFF, 32));
            let hi = cf.field_cost(&Field::new(new >> 32, old >> 32, 32));
            prop_assert!(whole.primary >= 0.0);
            prop_assert!((whole.primary - (lo.primary + hi.primary)).abs() < 1e-9,
                "{} not additive", cf.name());
        }
    }
}
