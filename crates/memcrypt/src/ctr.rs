//! Counter-mode (CTR) encryption of memory lines.
//!
//! Following the architecture of Figure 4, every 512-bit cache line is
//! encrypted by XOR with a one-time pad produced by AES engines keyed with a
//! per-memory secret key and fed the line address plus a per-line write
//! counter (NIST SP 800-38A counter mode). The counter is incremented on
//! every write so pads are never reused, and it is stored alongside the line
//! so reads can regenerate the pad for decryption.

use crate::aes::{Aes128, BLOCK_BYTES};

/// Number of bytes in a cache line (512 bits).
pub const LINE_BYTES: usize = 64;

/// Number of 64-bit words in a cache line.
pub const LINE_WORDS: usize = LINE_BYTES / 8;

/// Counter-mode encryption engine for 512-bit cache lines.
///
/// # Examples
///
/// ```
/// use memcrypt::CtrEngine;
///
/// let engine = CtrEngine::new([7u8; 16]);
/// let line = [0xDEADBEEFu64; 8];
/// let ct = engine.encrypt_line(0x1000, 3, &line);
/// assert_ne!(ct, line);
/// assert_eq!(engine.decrypt_line(0x1000, 3, &ct), line);
/// ```
#[derive(Debug, Clone)]
pub struct CtrEngine {
    aes: Aes128,
}

impl CtrEngine {
    /// Creates an engine with the given 128-bit memory encryption key.
    pub fn new(key: [u8; 16]) -> Self {
        CtrEngine {
            aes: Aes128::new(&key),
        }
    }

    /// Assembles the 128-bit counter-mode input block ("tweak") for one AES
    /// engine.
    ///
    /// Layout (little-endian): bytes 0–7 hold the line address, bytes 8–14
    /// hold the low **56 bits** of the write counter, and byte 15 holds the
    /// block index within the line (0–3). Only 56 bits of counter fit, so
    /// counters at or above 2^56 would alias an earlier pad and reuse a
    /// one-time pad — a hard invariant, checked here. At one write per
    /// nanosecond a line would take over two years to exhaust 2^56 writes,
    /// so real traces never approach the limit.
    fn tweak(line_addr: u64, counter: u64, blk: usize) -> [u8; BLOCK_BYTES] {
        debug_assert!(
            counter < 1 << 56,
            "write counter {counter:#x} exceeds the 56-bit tweak field; \
             the pad would alias counter {:#x}",
            counter & ((1 << 56) - 1)
        );
        debug_assert!(blk < LINE_BYTES / BLOCK_BYTES, "block index out of range");
        let mut tweak = [0u8; BLOCK_BYTES];
        tweak[0..8].copy_from_slice(&line_addr.to_le_bytes());
        tweak[8..15].copy_from_slice(&counter.to_le_bytes()[..7]);
        tweak[15] = blk as u8;
        tweak
    }

    /// Generates the two 64-bit pad words of one 128-bit AES block (block
    /// index `blk` ∈ 0..4 within the line) — what a single one of the
    /// paper's four parallel AES engines produces.
    pub fn pad_block(&self, line_addr: u64, counter: u64, blk: usize) -> [u64; 2] {
        let ks = self
            .aes
            .encrypt_block(&Self::tweak(line_addr, counter, blk));
        [
            // PANIC-OK: both slices are statically 8 bytes of a [u8; 16];
            // try_into cannot fail.
            u64::from_le_bytes(ks[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(ks[8..16].try_into().expect("8 bytes")), // PANIC-OK: as above
        ]
    }

    /// Generates the 512-bit one-time pad for (`line_addr`, `counter`) as
    /// eight 64-bit words — the output of the paper's four parallel AES
    /// engines (4 × 128 bits). See [`CtrEngine::pad_block`] for the tweak
    /// layout and the 56-bit counter invariant.
    pub fn pad(&self, line_addr: u64, counter: u64) -> [u64; LINE_WORDS] {
        let mut out = [0u64; LINE_WORDS];
        for blk in 0..(LINE_BYTES / BLOCK_BYTES) {
            let words = self.pad_block(line_addr, counter, blk);
            out[2 * blk] = words[0];
            out[2 * blk + 1] = words[1];
        }
        out
    }

    /// Encrypts a 512-bit line in place-by-value with the pad for
    /// (`line_addr`, `counter`).
    pub fn encrypt_line(
        &self,
        line_addr: u64,
        counter: u64,
        plaintext: &[u64; LINE_WORDS],
    ) -> [u64; LINE_WORDS] {
        let pad = self.pad(line_addr, counter);
        let mut out = [0u64; LINE_WORDS];
        for i in 0..LINE_WORDS {
            out[i] = plaintext[i] ^ pad[i];
        }
        out
    }

    /// Decrypts a 512-bit line (CTR decryption is the same XOR).
    pub fn decrypt_line(
        &self,
        line_addr: u64,
        counter: u64,
        ciphertext: &[u64; LINE_WORDS],
    ) -> [u64; LINE_WORDS] {
        self.encrypt_line(line_addr, counter, ciphertext)
    }

    /// Encrypts a single 64-bit word at word index `word_idx` of the line.
    ///
    /// Runs exactly one AES block — the one whose keystream covers
    /// `word_idx` — instead of generating the full 512-bit pad, so
    /// word-granularity callers pay a quarter of the line-pad cost.
    pub fn encrypt_word(&self, line_addr: u64, counter: u64, word_idx: usize, word: u64) -> u64 {
        assert!(word_idx < LINE_WORDS, "word index out of range");
        word ^ self.pad_block(line_addr, counter, word_idx / 2)[word_idx % 2]
    }
}

/// Tracks per-line write counters for a memory region, as the paper's
/// encryption unit does ("the four AES engines increment the value of the
/// cache-line counter by 1" per write).
#[derive(Debug, Clone, Default)]
pub struct CounterTable {
    counters: std::collections::HashMap<u64, u64>,
}

impl CounterTable {
    /// Creates an empty counter table (all counters implicitly zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counter for a line.
    pub fn current(&self, line_addr: u64) -> u64 {
        *self.counters.get(&line_addr).unwrap_or(&0)
    }

    /// Increments and returns the new counter value to use for a write.
    pub fn next_for_write(&mut self, line_addr: u64) -> u64 {
        let c = self.counters.entry(line_addr).or_insert(0);
        *c += 1;
        *c
    }

    /// Number of lines that have been written at least once.
    pub fn touched_lines(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let engine = CtrEngine::new([1u8; 16]);
        let line = [0x0123_4567_89AB_CDEFu64; 8];
        for ctr in 0..4 {
            let ct = engine.encrypt_line(0xABC0, ctr, &line);
            assert_eq!(engine.decrypt_line(0xABC0, ctr, &ct), line);
        }
    }

    #[test]
    fn pads_differ_across_addresses_and_counters() {
        let engine = CtrEngine::new([1u8; 16]);
        let p1 = engine.pad(0x40, 0);
        let p2 = engine.pad(0x80, 0);
        let p3 = engine.pad(0x40, 1);
        assert_ne!(p1, p2);
        assert_ne!(p1, p3);
        assert_ne!(p2, p3);
    }

    #[test]
    fn pad_blocks_are_distinct_within_a_line() {
        let engine = CtrEngine::new([9u8; 16]);
        let pad = engine.pad(0, 0);
        for i in 0..LINE_WORDS {
            for j in (i + 1)..LINE_WORDS {
                assert_ne!(pad[i], pad[j], "pad words {i} and {j} collide");
            }
        }
    }

    #[test]
    fn ciphertext_looks_unbiased() {
        // Encrypting highly biased plaintext (all zeros) must produce about
        // 50% ones — the property that defeats biased coset coding.
        let engine = CtrEngine::new([3u8; 16]);
        let zeros = [0u64; 8];
        let mut ones = 0u32;
        let lines = 512u64;
        for addr in 0..lines {
            let ct = engine.encrypt_line(addr * 64, 1, &zeros);
            ones += ct.iter().map(|w| w.count_ones()).sum::<u32>();
        }
        let total_bits = lines * 512;
        let frac = ones as f64 / total_bits as f64;
        assert!(
            (frac - 0.5).abs() < 0.01,
            "ciphertext ones fraction {frac} is biased"
        );
    }

    #[test]
    fn word_encryption_matches_line_encryption() {
        let engine = CtrEngine::new([5u8; 16]);
        let line = [42u64; 8];
        let ct = engine.encrypt_line(0x100, 7, &line);
        for (i, expect) in ct.iter().enumerate() {
            assert_eq!(engine.encrypt_word(0x100, 7, i, line[i]), *expect);
        }
    }

    /// The single-block path must reproduce the corresponding slice of the
    /// full pad for every word index, address and counter probed.
    #[test]
    fn pad_block_matches_full_pad() {
        let engine = CtrEngine::new([0xA5u8; 16]);
        for (addr, ctr) in [
            (0u64, 0u64),
            (0x40, 1),
            (0xFFC0, 12345),
            (1 << 40, (1 << 56) - 1),
        ] {
            let pad = engine.pad(addr, ctr);
            for (word_idx, expect) in pad.iter().enumerate() {
                assert_eq!(
                    engine.pad_block(addr, ctr, word_idx / 2)[word_idx % 2],
                    *expect,
                    "word {word_idx} of ({addr:#x}, {ctr})"
                );
            }
        }
    }

    /// Counters must fit the 56-bit tweak field; larger values would alias
    /// an earlier pad (checked in debug builds).
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "56-bit tweak field")]
    fn counter_beyond_56_bits_is_rejected() {
        let engine = CtrEngine::new([1u8; 16]);
        engine.pad(0x40, 1 << 56);
    }

    #[test]
    fn counter_table_tracks_writes() {
        let mut t = CounterTable::new();
        assert_eq!(t.current(0x40), 0);
        assert_eq!(t.next_for_write(0x40), 1);
        assert_eq!(t.next_for_write(0x40), 2);
        assert_eq!(t.next_for_write(0x80), 1);
        assert_eq!(t.current(0x40), 2);
        assert_eq!(t.touched_lines(), 2);
    }
}
