//! Memory-encryption substrate for the VCC reproduction.
//!
//! The paper assumes the memory controller encrypts every cache line with
//! counter-mode AES before coset encoding (Figure 4), which is what makes
//! the written data statistically random and motivates VCC in the first
//! place. This crate provides:
//!
//! * [`aes`] — a from-scratch, test-vector-verified AES-128 block cipher,
//! * [`ctr`] — counter-mode line encryption and the per-line counter table,
//! * [`keystream`] — the [`MemoryEncryption`] front-end used by the
//!   simulators, with both an AES-backed and a fast keyed-PRNG pad source,
//! * [`prng`] — deterministic generators for memory initialization.
//!
//! ```
//! use memcrypt::{CtrEngine, MemoryEncryption};
//!
//! let mut enc = MemoryEncryption::new(CtrEngine::new([0x42; 16]));
//! let plaintext = [0u64; 8];                      // a highly biased line
//! let (ciphertext, counter) = enc.encrypt_writeback(0x80, &plaintext);
//! // The ciphertext is unbiased: roughly half the bits are ones.
//! let ones: u32 = ciphertext.iter().map(|w| w.count_ones()).sum();
//! assert!(ones > 180 && ones < 330);
//! assert_eq!(enc.decrypt_read(0x80, counter, &ciphertext), plaintext);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aes;
pub mod ctr;
pub mod keystream;
pub mod prng;

pub use aes::Aes128;
pub use ctr::{CounterTable, CtrEngine, LINE_BYTES, LINE_WORDS};
pub use keystream::{
    simulation_encryption, AesMemoryEncryption, FastPad, MemoryEncryption, PadSource,
    SimulationEncryption,
};
pub use prng::{initial_row_contents, SplitMix64, XoshiroPad};
