//! High-level encryption front-end used by the simulators.
//!
//! [`MemoryEncryption`] combines the AES counter-mode engine with the
//! per-line counter table, exposing exactly the interface the experiment
//! harness needs: "hand me the encrypted image of this write-back" and
//! "decrypt what I read". A faster [`SimulationEncryption`] variant swaps
//! the AES pad for a keyed xoshiro pad; it is statistically equivalent for
//! the paper's purposes (uniformly random-looking ciphertext) and an order
//! of magnitude faster, which matters for the lifetime simulations.

use crate::ctr::{CounterTable, CtrEngine, LINE_WORDS};
use crate::prng::{SplitMix64, XoshiroPad};

/// A provider of 512-bit one-time pads addressed by (line address, counter).
pub trait PadSource: Send + Sync {
    /// The pad for a given line address and write counter.
    fn pad(&self, line_addr: u64, counter: u64) -> [u64; LINE_WORDS];
}

impl PadSource for CtrEngine {
    fn pad(&self, line_addr: u64, counter: u64) -> [u64; LINE_WORDS] {
        CtrEngine::pad(self, line_addr, counter)
    }
}

/// A fast keyed pad source backed by xoshiro256** seeded from
/// (key, address, counter). Suitable for simulation only.
#[derive(Debug, Clone, Copy)]
pub struct FastPad {
    key: u64,
}

impl FastPad {
    /// Creates a fast pad source with a 64-bit simulation key.
    pub fn new(key: u64) -> Self {
        FastPad { key }
    }
}

impl PadSource for FastPad {
    fn pad(&self, line_addr: u64, counter: u64) -> [u64; LINE_WORDS] {
        let seed = SplitMix64::mix(self.key ^ SplitMix64::mix(line_addr) ^ counter.rotate_left(32));
        let mut gen = XoshiroPad::new(seed);
        let mut out = [0u64; LINE_WORDS];
        gen.fill(&mut out);
        out
    }
}

/// Counter-mode memory encryption with per-line write counters.
///
/// # Examples
///
/// ```
/// use memcrypt::{MemoryEncryption, CtrEngine};
///
/// let mut enc = MemoryEncryption::new(CtrEngine::new([1u8; 16]));
/// let plaintext = [7u64; 8];
/// let (ciphertext, counter) = enc.encrypt_writeback(0x1000, &plaintext);
/// assert_eq!(enc.decrypt_read(0x1000, counter, &ciphertext), plaintext);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryEncryption<P: PadSource> {
    pads: P,
    counters: CounterTable,
}

impl<P: PadSource> MemoryEncryption<P> {
    /// Wraps a pad source with a fresh counter table.
    pub fn new(pads: P) -> Self {
        MemoryEncryption {
            pads,
            counters: CounterTable::new(),
        }
    }

    /// Encrypts a dirty line being written back: bumps the line's counter,
    /// XORs the plaintext with the fresh pad, and returns the ciphertext
    /// together with the counter value that must be stored with the line.
    pub fn encrypt_writeback(
        &mut self,
        line_addr: u64,
        plaintext: &[u64; LINE_WORDS],
    ) -> ([u64; LINE_WORDS], u64) {
        let counter = self.counters.next_for_write(line_addr);
        let pad = self.pads.pad(line_addr, counter);
        let mut out = [0u64; LINE_WORDS];
        for i in 0..LINE_WORDS {
            out[i] = plaintext[i] ^ pad[i];
        }
        (out, counter)
    }

    /// Decrypts a line read from memory given its stored counter.
    pub fn decrypt_read(
        &self,
        line_addr: u64,
        counter: u64,
        ciphertext: &[u64; LINE_WORDS],
    ) -> [u64; LINE_WORDS] {
        let pad = self.pads.pad(line_addr, counter);
        let mut out = [0u64; LINE_WORDS];
        for i in 0..LINE_WORDS {
            out[i] = ciphertext[i] ^ pad[i];
        }
        out
    }

    /// Current write counter of a line (0 if never written).
    pub fn counter(&self, line_addr: u64) -> u64 {
        self.counters.current(line_addr)
    }

    /// Number of distinct lines written so far.
    pub fn touched_lines(&self) -> usize {
        self.counters.touched_lines()
    }
}

/// The AES-backed production configuration.
pub type AesMemoryEncryption = MemoryEncryption<CtrEngine>;

/// The fast simulation configuration.
pub type SimulationEncryption = MemoryEncryption<FastPad>;

/// Builds the fast simulation encryption with a 64-bit key.
pub fn simulation_encryption(key: u64) -> SimulationEncryption {
    MemoryEncryption::new(FastPad::new(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_backed_roundtrip_with_counter_advance() {
        let mut enc = MemoryEncryption::new(CtrEngine::new([2u8; 16]));
        let pt = [0x1111_2222_3333_4444u64; 8];
        let (ct1, c1) = enc.encrypt_writeback(0x40, &pt);
        let (ct2, c2) = enc.encrypt_writeback(0x40, &pt);
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
        // Same plaintext, different counters => different ciphertexts.
        assert_ne!(ct1, ct2);
        assert_eq!(enc.decrypt_read(0x40, c1, &ct1), pt);
        assert_eq!(enc.decrypt_read(0x40, c2, &ct2), pt);
        assert_eq!(enc.counter(0x40), 2);
        assert_eq!(enc.touched_lines(), 1);
    }

    #[test]
    fn fast_pad_roundtrip_and_uniformity() {
        let mut enc = simulation_encryption(0xFEED);
        let pt = [0u64; 8];
        let mut ones = 0u64;
        let lines = 1024u64;
        for addr in 0..lines {
            let (ct, ctr) = enc.encrypt_writeback(addr * 64, &pt);
            assert_eq!(enc.decrypt_read(addr * 64, ctr, &ct), pt);
            ones += ct.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        let frac = ones as f64 / (lines as f64 * 512.0);
        assert!((frac - 0.5).abs() < 0.01, "fast pad bias {frac}");
    }

    #[test]
    fn fast_pads_differ_per_address_and_counter() {
        let p = FastPad::new(1);
        assert_ne!(p.pad(0x40, 1), p.pad(0x80, 1));
        assert_ne!(p.pad(0x40, 1), p.pad(0x40, 2));
        assert_eq!(p.pad(0x40, 1), p.pad(0x40, 1));
    }
}
