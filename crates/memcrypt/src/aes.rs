//! A from-scratch AES-128 block cipher (FIPS-197).
//!
//! The paper's memory controller encrypts every cache line with
//! counter-mode AES before it reaches the coset encoder (Figure 4). This is
//! a straightforward, table-free software implementation: it favours
//! clarity and testability over speed, and the higher-level
//! [`crate::ctr`] / [`crate::keystream`] modules provide the throughput the
//! simulations need by caching keystream blocks.
//!
//! This implementation is for simulation purposes only; it makes no attempt
//! to be constant-time.

/// AES block size in bytes.
pub const BLOCK_BYTES: usize = 16;

/// AES-128 key size in bytes.
pub const KEY_BYTES: usize = 16;

/// Number of AES-128 rounds.
const ROUNDS: usize = 10;

/// The AES S-box, generated at key-schedule time from the finite-field
/// inverse plus affine transform so no magic tables need auditing.
fn generate_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for (i, entry) in sbox.iter_mut().enumerate() {
        let inv = if i == 0 { 0 } else { gf_inverse(i as u8) };
        *entry = affine(inv);
    }
    sbox
}

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) via exponentiation (a^254).
fn gf_inverse(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    let mut power = a;
    // exponent 254 = 0b11111110
    for bit in 1..8 {
        power = gf_mul(power, power); // a^(2^bit)
        let _ = bit;
        result = gf_mul(result, power);
    }
    result
}

/// The AES affine transformation applied after inversion.
fn affine(x: u8) -> u8 {
    let mut y = 0u8;
    for i in 0..8 {
        let bit = ((x >> i) & 1)
            ^ ((x >> ((i + 4) % 8)) & 1)
            ^ ((x >> ((i + 5) % 8)) & 1)
            ^ ((x >> ((i + 6) % 8)) & 1)
            ^ ((x >> ((i + 7) % 8)) & 1)
            ^ ((0x63 >> i) & 1);
        y |= bit << i;
    }
    y
}

/// AES-128 cipher with a precomputed key schedule.
///
/// # Examples
///
/// ```
/// use memcrypt::aes::Aes128;
///
/// let key = [0u8; 16];
/// let aes = Aes128::new(&key);
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(ct.len(), 16);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; BLOCK_BYTES]; ROUNDS + 1],
    sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: &[u8; KEY_BYTES]) -> Self {
        let sbox = generate_sbox();
        let mut round_keys = [[0u8; BLOCK_BYTES]; ROUNDS + 1];
        round_keys[0].copy_from_slice(key);
        let mut rcon = 1u8;
        for r in 1..=ROUNDS {
            let prev = round_keys[r - 1];
            let mut word = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            word.rotate_left(1);
            for b in &mut word {
                *b = sbox[*b as usize];
            }
            word[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
            let mut next = [0u8; BLOCK_BYTES];
            for i in 0..4 {
                next[i] = prev[i] ^ word[i];
            }
            for i in 4..BLOCK_BYTES {
                next[i] = prev[i] ^ next[i - 4];
            }
            round_keys[r] = next;
        }
        Aes128 { round_keys, sbox }
    }

    fn sub_bytes(&self, state: &mut [u8; BLOCK_BYTES]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; BLOCK_BYTES]) {
        // State is column-major: byte index = 4*col + row.
        let s = *state;
        for row in 1..4 {
            for col in 0..4 {
                state[4 * col + row] = s[4 * ((col + row) % 4) + row];
            }
        }
    }

    fn mix_columns(state: &mut [u8; BLOCK_BYTES]) {
        for col in 0..4 {
            let a0 = state[4 * col];
            let a1 = state[4 * col + 1];
            let a2 = state[4 * col + 2];
            let a3 = state[4 * col + 3];
            state[4 * col] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
            state[4 * col + 1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
            state[4 * col + 2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
            state[4 * col + 3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
        }
    }

    fn add_round_key(state: &mut [u8; BLOCK_BYTES], rk: &[u8; BLOCK_BYTES]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= *k;
        }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, plaintext: &[u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let mut state = *plaintext;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..ROUNDS {
            self.sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
        }
        self.sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_values() {
        let sbox = generate_sbox();
        // FIPS-197 Figure 7 spot checks.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        assert_eq!(sbox[0x9a], 0xb8);
    }

    #[test]
    fn gf_math() {
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x02), 0xae);
        // Inverse property.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inverse(a)), 1, "inverse failed for {a:#x}");
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // Key and plaintext from FIPS-197 Appendix B.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // AES-128 test vector from FIPS-197 Appendix C.1.
        let key: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = (0u8..16)
            .map(|i| i * 0x11)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
    }

    #[test]
    fn different_plaintexts_give_different_ciphertexts() {
        let aes = Aes128::new(&[7u8; 16]);
        let a = aes.encrypt_block(&[0u8; 16]);
        let mut pt = [0u8; 16];
        pt[15] = 1;
        let b = aes.encrypt_block(&pt);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[0xAA; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains("170") && !s.to_lowercase().contains("aa, aa"));
    }
}
