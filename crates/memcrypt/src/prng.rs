//! Fast deterministic pseudo-random generators used by the simulators.
//!
//! The paper initializes every memory address with output from a
//! cryptographically strong byte generator (OpenSSL) and uses the same
//! source for one-time pads. For bulk simulation we substitute two local
//! generators:
//!
//! * [`SplitMix64`] — a tiny, high-quality 64-bit mixer used for seeding and
//!   cheap per-address values,
//! * [`XoshiroPad`] — a xoshiro256**-based stream generator used to fill
//!   large regions (memory initialization) deterministically from a seed.
//!
//! Both are deterministic so experiments are exactly reproducible; neither
//! is used where real confidentiality matters (the AES engine in
//! [`crate::aes`] covers that).

/// SplitMix64: a 64-bit state mixer with excellent avalanche behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stateless hash of an arbitrary 64-bit value with the same mixer —
    /// handy for deriving a per-address pseudo-random value without storing
    /// per-address state.
    pub fn mix(value: u64) -> u64 {
        let mut g = SplitMix64::new(value);
        g.next_u64()
    }
}

/// xoshiro256** — fast filler for large deterministic streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XoshiroPad {
    s: [u64; 4],
}

impl XoshiroPad {
    /// Seeds the generator (expanding the seed through SplitMix64 as
    /// recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        XoshiroPad {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fills a slice of words.
    pub fn fill(&mut self, out: &mut [u64]) {
        for w in out {
            *w = self.next_u64();
        }
    }

    /// Produces `n` words as a vector.
    pub fn words(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }
}

/// Deterministically derives the pseudo-random initial contents of a 512-bit
/// row at `row_addr` for a memory seeded with `memory_seed`; used to
/// initialize simulated memories without storing untouched rows.
pub fn initial_row_contents(memory_seed: u64, row_addr: u64) -> [u64; 8] {
    let mut gen = XoshiroPad::new(SplitMix64::mix(memory_seed ^ row_addr.rotate_left(17)));
    let mut out = [0u64; 8];
    gen.fill(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 (from the public-domain
        // reference implementation).
        let mut g = SplitMix64::new(1234567);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), a);
        assert_eq!(h.next_u64(), b);
    }

    #[test]
    fn mix_is_stateless_and_spreads_bits() {
        assert_eq!(SplitMix64::mix(42), SplitMix64::mix(42));
        assert_ne!(SplitMix64::mix(42), SplitMix64::mix(43));
        // Adjacent inputs should differ in roughly half their output bits.
        let d = (SplitMix64::mix(1000) ^ SplitMix64::mix(1001)).count_ones();
        assert!(d > 16 && d < 48, "poor avalanche: {d} bits");
    }

    #[test]
    fn xoshiro_is_deterministic_and_unbiased() {
        let mut a = XoshiroPad::new(7);
        let mut b = XoshiroPad::new(7);
        assert_eq!(a.words(16), b.words(16));

        let mut g = XoshiroPad::new(99);
        let words = g.words(4096);
        let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        let frac = ones as f64 / (4096.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bias: {frac}");
    }

    #[test]
    fn fill_matches_words() {
        let mut a = XoshiroPad::new(5);
        let mut b = XoshiroPad::new(5);
        let mut buf = [0u64; 8];
        a.fill(&mut buf);
        assert_eq!(buf.to_vec(), b.words(8));
    }

    #[test]
    fn initial_rows_are_stable_and_distinct() {
        let r1 = initial_row_contents(1, 0x40);
        let r1_again = initial_row_contents(1, 0x40);
        let r2 = initial_row_contents(1, 0x80);
        let r3 = initial_row_contents(2, 0x40);
        assert_eq!(r1, r1_again);
        assert_ne!(r1, r2);
        assert_ne!(r1, r3);
    }
}
