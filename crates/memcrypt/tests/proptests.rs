//! Property-based tests for the memory-encryption substrate.

use memcrypt::{
    simulation_encryption, Aes128, CtrEngine, FastPad, MemoryEncryption, PadSource, SplitMix64,
    XoshiroPad,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// AES encryption is injective on the plaintext for a fixed key (no two
    /// distinct plaintext blocks map to the same ciphertext), and
    /// deterministic.
    #[test]
    fn aes_is_deterministic_and_distinct(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.encrypt_block(&a), aes.encrypt_block(&a));
        if a != b {
            prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
        }
    }

    /// CTR-mode line encryption round-trips for arbitrary keys, addresses,
    /// counters and payloads.
    #[test]
    fn ctr_roundtrip(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        // Write counters live in the 56-bit tweak field (values beyond it
        // would alias pads and are rejected in debug builds).
        counter in 0u64..1 << 56,
        line in any::<[u64; 8]>(),
    ) {
        let engine = CtrEngine::new(key);
        let ct = engine.encrypt_line(addr, counter, &line);
        prop_assert_eq!(engine.decrypt_line(addr, counter, &ct), line);
        // Encryption actually changes the data (probability of a fixed point
        // is negligible).
        prop_assert_ne!(ct, line);
    }

    /// The memory-encryption front end always recovers the plaintext using
    /// the counter it handed out, for both the AES and fast pads.
    #[test]
    fn writeback_roundtrip(addr in any::<u64>(), line in any::<[u64; 8]>(), key in any::<u64>()) {
        let mut fast = simulation_encryption(key);
        let (ct, ctr) = fast.encrypt_writeback(addr, &line);
        prop_assert_eq!(fast.decrypt_read(addr, ctr, &ct), line);

        let mut aes = MemoryEncryption::new(CtrEngine::new([7u8; 16]));
        let (ct2, ctr2) = aes.encrypt_writeback(addr, &line);
        prop_assert_eq!(aes.decrypt_read(addr, ctr2, &ct2), line);
    }

    /// Counters advance by one per write-back to the same line and never
    /// repeat a pad (different counters give different ciphertexts).
    #[test]
    fn counters_advance_and_pads_differ(addr in any::<u64>(), line in any::<[u64; 8]>(), key in any::<u64>()) {
        let mut enc = simulation_encryption(key);
        let (ct1, c1) = enc.encrypt_writeback(addr, &line);
        let (ct2, c2) = enc.encrypt_writeback(addr, &line);
        prop_assert_eq!(c2, c1 + 1);
        prop_assert_ne!(ct1, ct2);
    }

    /// The fast pad is a pure function of (key, address, counter).
    #[test]
    fn fast_pad_is_pure(key in any::<u64>(), addr in any::<u64>(), ctr in any::<u64>()) {
        let p = FastPad::new(key);
        prop_assert_eq!(p.pad(addr, ctr), p.pad(addr, ctr));
    }

    /// SplitMix64 mixing is deterministic and changes when any input bit
    /// changes.
    #[test]
    fn splitmix_sensitivity(x in any::<u64>(), bit in 0u32..64) {
        let flipped = x ^ (1u64 << bit);
        prop_assert_eq!(SplitMix64::mix(x), SplitMix64::mix(x));
        prop_assert_ne!(SplitMix64::mix(x), SplitMix64::mix(flipped));
    }

    /// Xoshiro streams from equal seeds are equal; from different seeds they
    /// diverge within a few words.
    #[test]
    fn xoshiro_streams(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mut a1 = XoshiroPad::new(seed_a);
        let mut a2 = XoshiroPad::new(seed_a);
        prop_assert_eq!(a1.words(8), a2.words(8));
        if seed_a != seed_b {
            let mut b = XoshiroPad::new(seed_b);
            prop_assert_ne!(XoshiroPad::new(seed_a).words(8), b.words(8));
        }
    }

    /// Ciphertext of heavily biased plaintext is unbiased (the crate's whole
    /// reason to exist): across many lines the ones fraction sits near 1/2.
    #[test]
    fn ciphertext_is_unbiased(key in any::<u64>()) {
        let mut enc = simulation_encryption(key);
        let zeros = [0u64; 8];
        let mut ones = 0u64;
        let lines = 256u64;
        for addr in 0..lines {
            let (ct, _) = enc.encrypt_writeback(addr * 64, &zeros);
            ones += ct.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        let frac = ones as f64 / (lines as f64 * 512.0);
        prop_assert!((frac - 0.5).abs() < 0.03, "bias {frac}");
    }
}
